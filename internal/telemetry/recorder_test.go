package telemetry

import (
	"testing"
	"time"

	"gpucnn/internal/gpusim"
)

func launchKernel(d *gpusim.Device, name string, flops float64) {
	d.MustLaunch(gpusim.KernelSpec{
		Name:          name,
		Grid:          gpusim.Dim3{X: 1024},
		Block:         gpusim.Dim3{X: 256},
		RegsPerThread: 32,
		FLOPs:         flops,
	})
}

func TestRecorderAttachesDeviceEvents(t *testing.T) {
	dev := gpusim.New(gpusim.TeslaK40c())
	tr := NewTracer()
	tr.SetSimClock(dev.Elapsed)
	root := tr.Root("run")

	rec := NewRecorder()
	if prev := rec.Attach(root); prev != nil {
		t.Fatal("fresh recorder had an attach point")
	}
	dev.SetSink(rec)

	launchKernel(dev, "sgemm", 1e9)
	dev.Copy(gpusim.Transfer{Bytes: 1 << 20})
	root.End()

	events := root.Events()
	if len(events) != 2 {
		t.Fatalf("%d events on the span, want 2", len(events))
	}
	if events[0].Name != "sgemm" || events[0].Cat != "kernel" || events[0].FLOPs != 1e9 {
		t.Fatalf("kernel event %+v", events[0])
	}
	if events[1].Cat != "transfer" || events[1].Bytes != 1<<20 {
		t.Fatalf("transfer event %+v", events[1])
	}
	// Span's simulated interval must cover the device work.
	if _, end := root.SimInterval(); end != dev.Elapsed() {
		t.Fatalf("span simEnd %v != device elapsed %v", end, dev.Elapsed())
	}
}

func TestRecorderStartPhase(t *testing.T) {
	dev := gpusim.New(gpusim.TeslaK40c())
	tr := NewTracer()
	root := tr.Root("layer")
	rec := NewRecorder()
	rec.Attach(root)
	dev.SetSink(rec)

	endFwd := rec.StartPhase("forward")
	launchKernel(dev, "fwd_kernel", 1e9)
	endFwd()
	launchKernel(dev, "other", 1e8)

	phases := root.Children()
	if len(phases) != 1 || phases[0].Name() != "forward" {
		t.Fatalf("phase spans %v", phases)
	}
	if ev := phases[0].Events(); len(ev) != 1 || ev[0].Name != "fwd_kernel" {
		t.Fatalf("phase events %v", ev)
	}
	// After the phase closure, events land on the parent again.
	if ev := root.Events(); len(ev) != 1 || ev[0].Name != "other" {
		t.Fatalf("post-phase events %v", ev)
	}
	if rec.Current() != root {
		t.Fatal("phase closure did not restore the attach point")
	}
}

func TestRecorderDetachedPhaseIsNoop(t *testing.T) {
	rec := NewRecorder()
	end := rec.StartPhase("forward") // no attach point: must not panic
	end()
	var nilRec *Recorder
	nilRec.RecordEvent(gpusim.TraceEvent{})
	nilRec.StartPhase("x")()
	nilRec.Attach(nil)
	if nilRec.CountInto(nil, nil) != nil || nilRec.Current() != nil {
		t.Fatal("nil recorder leaked state")
	}
}

func TestRecorderCountInto(t *testing.T) {
	dev := gpusim.New(gpusim.TeslaK40c())
	reg := NewRegistry()
	rec := NewRecorder().CountInto(reg, Labels{"device": "k40c"})
	rec.Attach(NewTracer().Root("run"))
	dev.SetSink(rec)

	launchKernel(dev, "k1", 1e9)
	launchKernel(dev, "k2", 2e9)
	dev.Copy(gpusim.Transfer{Bytes: 4096})

	l := Labels{"device": "k40c"}
	if v := reg.Counter("gpusim_kernel_launches_total", l).Value(); v != 2 {
		t.Fatalf("launches counter = %v", v)
	}
	if v := reg.Counter("gpusim_flops_total", l).Value(); v != 3e9 {
		t.Fatalf("flops counter = %v", v)
	}
	if v := reg.Counter("gpusim_transfers_total", l).Value(); v != 1 {
		t.Fatalf("transfers counter = %v", v)
	}
	if v := reg.Counter("gpusim_transfer_bytes_total", l).Value(); v != 4096 {
		t.Fatalf("transfer bytes counter = %v", v)
	}
}

func TestCollectDevice(t *testing.T) {
	dev := gpusim.New(gpusim.TeslaK40c())
	launchKernel(dev, "sgemm", 1e9)
	reg := NewRegistry()
	CollectDevice(reg, dev, Labels{"device": "k40c"})

	if v := reg.Gauge("gpusim_launches", Labels{"device": "k40c"}).Value(); v != 1 {
		t.Fatalf("gpusim_launches = %v", v)
	}
	if v := reg.Gauge("gpusim_elapsed_seconds", Labels{"device": "k40c"}).Value(); v <= 0 {
		t.Fatalf("gpusim_elapsed_seconds = %v", v)
	}
	perKernel := Labels{"device": "k40c", "kernel": "sgemm"}
	if v := reg.Gauge("gpusim_kernel_launches", perKernel).Value(); v != 1 {
		t.Fatalf("per-kernel launches = %v", v)
	}
	if v := reg.Gauge("gpusim_kernel_flops", perKernel).Value(); v != 1e9 {
		t.Fatalf("per-kernel flops = %v", v)
	}
}

func TestRecorderConcurrentEvents(t *testing.T) {
	tr := NewTracer()
	root := tr.Root("run")
	rec := NewRecorder().CountInto(NewRegistry(), nil)
	rec.Attach(root)

	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				rec.RecordEvent(gpusim.TraceEvent{
					Name: "k", Category: "kernel",
					Start: time.Duration(i), Duration: 1, FLOPs: 1,
				})
			}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if tot := root.Totals(); tot.Kernels != 800 {
		t.Fatalf("lost events: %+v", tot)
	}
}
