package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// buildTestTrace constructs a deterministic two-level trace with a
// transfer feeding a kernel, on fixed simulated timestamps.
func buildTestTrace() *Tracer {
	tr := NewTracer()
	var now time.Duration
	tr.SetSimClock(func() time.Duration { return now })

	run := tr.Root("run").SetAttr("impl", "cuDNN")
	layer := run.Child("conv1")
	layer.AddEvent(Event{Name: "memcpy_HtoD", Cat: "transfer",
		Start: 0, Dur: 2 * time.Millisecond, Bytes: 1 << 20})
	layer.AddEvent(Event{Name: "cudnn_gemm", Cat: "kernel",
		Start: 2 * time.Millisecond, Dur: 5 * time.Millisecond, FLOPs: 1e9})
	now = 7 * time.Millisecond
	layer.End()
	run.End()
	return tr
}

func decodeChrome(t *testing.T, tr *Tracer) map[string]any {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var file map[string]any
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("invalid chrome JSON: %v", err)
	}
	return file
}

func eventsOf(t *testing.T, file map[string]any) []map[string]any {
	t.Helper()
	raw, ok := file["traceEvents"].([]any)
	if !ok {
		t.Fatalf("traceEvents missing: %v", file)
	}
	out := make([]map[string]any, len(raw))
	for i, e := range raw {
		out[i] = e.(map[string]any)
	}
	return out
}

func TestWriteChromeObjectForm(t *testing.T) {
	file := decodeChrome(t, buildTestTrace())
	if file["displayTimeUnit"] != "ns" {
		t.Fatalf("displayTimeUnit = %v", file["displayTimeUnit"])
	}
	events := eventsOf(t, file)

	byName := map[string]map[string]any{}
	phases := map[string]int{}
	for _, e := range events {
		byName[e["name"].(string)] = e
		phases[e["ph"].(string)]++
	}

	// Span slices with args, on the compute lane.
	run := byName["run"]
	if run["cat"] != "span" || run["tid"].(float64) != tidCompute {
		t.Fatalf("run span %v", run)
	}
	if args := run["args"].(map[string]any); args["impl"] != "cuDNN" {
		t.Fatalf("span args %v", run["args"])
	}
	if byName["conv1"] == nil {
		t.Fatal("nested span missing")
	}

	// Kernel on compute lane, transfer on copy lane, µs timestamps.
	k := byName["cudnn_gemm"]
	if k["tid"].(float64) != tidCompute || k["ts"].(float64) != 2000 || *durOf(k) != 5000 {
		t.Fatalf("kernel event %v", k)
	}
	cp := byName["memcpy_HtoD"]
	if cp["cat"] == "transfer" && cp["tid"].(float64) != tidCopy {
		t.Fatalf("transfer event %v", cp)
	}

	// Flow arrow from the transfer to the kernel that consumes it.
	if phases["s"] != 1 || phases["f"] != 1 {
		t.Fatalf("flow phases %v, want one s and one f", phases)
	}

	// Process/thread metadata present.
	if phases["M"] != 3 {
		t.Fatalf("%d metadata rows, want 3", phases["M"])
	}
}

func durOf(e map[string]any) *float64 {
	if d, ok := e["dur"].(float64); ok {
		return &d
	}
	return nil
}

func TestWriteChromeMultiProcess(t *testing.T) {
	tr := NewTracer()
	root := tr.Root("multigpu")
	for i := 0; i < 2; i++ {
		r := root.Child("replica").SetProc(i)
		r.AddEvent(Event{Name: "k", Cat: "kernel", Dur: time.Millisecond})
		r.End()
	}
	root.End()

	events := eventsOf(t, decodeChrome(t, tr))
	pids := map[float64]bool{}
	for _, e := range events {
		if e["ph"] == "X" {
			pids[e["pid"].(float64)] = true
		}
	}
	if !pids[1] || !pids[2] {
		t.Fatalf("replica lanes missing: pids %v", pids)
	}
	// One process_name metadata row per lane.
	names := 0
	for _, e := range events {
		if e["ph"] == "M" && e["name"] == "process_name" {
			names++
		}
	}
	if names != 2 {
		t.Fatalf("%d process_name rows, want 2", names)
	}
}
