package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// spliceLabel appends one pre-rendered k="v" pair to a rendered label
// set ("" or "{...}").
func spliceLabel(key, kv string) string {
	if key == "" {
		return "{" + kv + "}"
	}
	return key[:len(key)-1] + "," + kv + "}"
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): one # TYPE line per family, histograms as
// cumulative le buckets plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	order := append([]string(nil), r.order...)
	fams := make([]*family, 0, len(order))
	type row struct {
		key  string
		inst any
	}
	rows := make(map[string][]row)
	for _, name := range order {
		f := r.families[name]
		fams = append(fams, f)
		for _, key := range f.sorder {
			rows[name] = append(rows[name], row{key, f.series[key]})
		}
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		typ := f.typ
		if typ == "" {
			typ = "untyped"
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, typ)
		for _, s := range rows[f.name] {
			switch inst := s.inst.(type) {
			case *Counter:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.key, formatFloat(inst.Value()))
			case *Gauge:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.key, formatFloat(inst.Value()))
			case *Histogram:
				snap := inst.Snapshot()
				for i, bound := range snap.Bounds {
					le := spliceLabel(s.key, fmt.Sprintf("le=%q", formatFloat(bound)))
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, le, snap.Cumulative[i])
				}
				le := spliceLabel(s.key, `le="+Inf"`)
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, le, snap.Count)
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, s.key, formatFloat(snap.Sum))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, s.key, snap.Count)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// MetricsSnapshot is the JSON form of the registry.
type MetricsSnapshot struct {
	Counters   map[string]float64           `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures all series, keyed by name plus rendered labels.
func (r *Registry) Snapshot() MetricsSnapshot {
	r.mu.Lock()
	type row struct {
		series string
		inst   any
	}
	var all []row
	for _, name := range r.order {
		f := r.families[name]
		for _, key := range f.sorder {
			all = append(all, row{name + key, f.series[key]})
		}
	}
	r.mu.Unlock()

	snap := MetricsSnapshot{
		Counters:   map[string]float64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	for _, s := range all {
		switch inst := s.inst.(type) {
		case *Counter:
			snap.Counters[s.series] = inst.Value()
		case *Gauge:
			snap.Gauges[s.series] = inst.Value()
		case *Histogram:
			snap.Histograms[s.series] = inst.Snapshot()
		}
	}
	return snap
}

// WriteJSON renders the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Handler serves the registry (and, when non-nil, the tracer) over
// HTTP:
//
//	/metrics       Prometheus text format (also the root path)
//	/metrics.json  JSON snapshot
//	/trace         Chrome trace-event JSON of the span forest so far
func Handler(r *Registry, t *Tracer) http.Handler {
	return HandlerMux(r, t)
}

// HandlerMux is Handler returning the concrete mux, so layers above
// telemetry (internal/obs's /debug/dash dashboard) can mount additional
// routes on the same endpoint.
func HandlerMux(r *Registry, t *Tracer) *http.ServeMux {
	mux := http.NewServeMux()
	metrics := func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	}
	mux.HandleFunc("/", metrics)
	mux.HandleFunc("/metrics", metrics)
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
	if t != nil {
		mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = t.WriteChrome(w)
		})
	}
	return mux
}
