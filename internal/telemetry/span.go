// Package telemetry is the observability layer of the reproduction: a
// hierarchical span tracer and a process-wide metrics registry over the
// simulated GPU stack. Where internal/gpusim's Profiler answers "which
// kernels were hot" (the paper's Figure 4) and its flat Trace answers
// "when did each kernel run", telemetry answers "which *layer* of which
// *model*, in which *pass*, launched them" — the layer-attributed view
// that DeLTA-style performance models and the fbfft evaluation's
// per-phase (fwd/bgrad/wgrad) methodology both depend on.
//
// Spans nest run → model → pass → layer → phase, with the simulated
// device's kernel and transfer events attached as leaves; the tree
// exports to Chrome trace-event JSON (chrome.go). Counters, gauges and
// latency histograms live in a Registry (metrics.go) with Prometheus
// text-format and JSON exporters plus an HTTP handler (export.go).
package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// Event is a leaf timeline entry inside a span: one simulated kernel
// launch or host↔device transfer, positioned on the device clock.
type Event struct {
	Name      string
	Cat       string // "kernel" or "transfer"
	Start     time.Duration
	Dur       time.Duration
	FLOPs     float64
	DRAMBytes float64
	Bytes     int64 // transferred bytes (transfers only)
}

// Totals aggregates the device work under a span (recursively).
type Totals struct {
	Kernels   int
	Transfers int
	FLOPs     float64
	DRAMBytes float64
	CopyBytes int64
	SimTime   time.Duration // summed event durations
}

// Tracer owns a forest of spans. It is safe for concurrent use.
type Tracer struct {
	mu       sync.Mutex
	roots    []*Span
	simClock func() time.Duration
	epoch    time.Time
	nextID   atomic.Uint64
}

// NewTracer creates an empty tracer.
func NewTracer() *Tracer {
	return &Tracer{epoch: time.Now()}
}

// SetSimClock attaches the simulated clock (typically
// gpusim.Device.Elapsed) sampled at every span start and end, so spans
// line up with the kernel events on one simulated timeline. Without a
// clock, spans fall back to host wall offsets from tracer creation.
func (t *Tracer) SetSimClock(f func() time.Duration) {
	t.mu.Lock()
	t.simClock = f
	t.mu.Unlock()
}

// simNow samples the simulated clock (0 without one).
func (t *Tracer) simNow() (time.Duration, bool) {
	t.mu.Lock()
	f := t.simClock
	t.mu.Unlock()
	if f == nil {
		return 0, false
	}
	return f(), true
}

// Root starts a new top-level span.
func (t *Tracer) Root(name string) *Span {
	s := t.newSpan(name, 0)
	t.mu.Lock()
	t.roots = append(t.roots, s)
	t.mu.Unlock()
	return s
}

// Roots returns the top-level spans recorded so far.
func (t *Tracer) Roots() []*Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.roots...)
}

func (t *Tracer) newSpan(name string, proc int) *Span {
	s := &Span{
		tracer:    t,
		id:        t.nextID.Add(1),
		name:      name,
		proc:      proc,
		wallStart: time.Now(),
	}
	if sim, ok := t.simNow(); ok {
		s.simStart, s.simEnd = sim, sim
	}
	return s
}

// EventCount returns the total number of leaf events in the forest.
func (t *Tracer) EventCount() int {
	n := 0
	for _, r := range t.Roots() {
		tot := r.Totals()
		n += tot.Kernels + tot.Transfers
	}
	return n
}

// Span is one node of the trace tree. All methods are nil-safe so
// instrumented code paths cost nothing when tracing is disabled.
type Span struct {
	tracer *Tracer
	id     uint64
	name   string

	mu        sync.Mutex
	proc      int // process lane in the Chrome export (multi-GPU replicas)
	attrs     map[string]string
	wallStart time.Time
	wallDur   time.Duration
	simStart  time.Duration
	simEnd    time.Duration
	ended     bool
	children  []*Span
	events    []Event
}

// Tracer returns the owning tracer (nil for a nil span).
func (s *Span) Tracer() *Tracer {
	if s == nil {
		return nil
	}
	return s.tracer
}

// Name returns the span name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Child starts a nested span, inheriting the parent's process lane.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	proc := s.proc
	s.mu.Unlock()
	c := s.tracer.newSpan(name, proc)
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// SetAttr records a key=value attribute, returned in exports.
func (s *Span) SetAttr(k, v string) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]string)
	}
	s.attrs[k] = v
	s.mu.Unlock()
	return s
}

// Attr reads an attribute back.
func (s *Span) Attr(k string) string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.attrs[k]
}

// SetProc assigns the span (and future children) to a Chrome process
// lane — one lane per simulated device in multi-GPU traces.
func (s *Span) SetProc(p int) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	s.proc = p
	s.mu.Unlock()
	return s
}

// SetSim pins the span's simulated interval explicitly, overriding the
// tracer clock — needed when spans cover devices with independent
// clocks (multi-GPU replicas).
func (s *Span) SetSim(start, end time.Duration) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	s.simStart, s.simEnd = start, end
	s.mu.Unlock()
	return s
}

// End closes the span, capturing wall duration and the simulated clock.
// Ending twice is harmless (first end wins).
func (s *Span) End() { s.EndIfOpen() }

// EndIfOpen is End with the idempotence made explicit: it closes the
// span only if no End has reached it yet and reports whether this call
// closed it. The house idiom for multi-exit code is
//
//	sp := tracer.Root("batch")
//	defer sp.EndIfOpen() // every early return and panic path is covered
//	...
//	sp.End()             // precise close on the success path
//
// First end wins, so the deferred guard never overwrites the timings
// captured by an earlier explicit End. The spanend analyzer accepts a
// deferred EndIfOpen as proof the span cannot leak.
func (s *Span) EndIfOpen() bool {
	if s == nil {
		return false
	}
	sim, ok := s.tracer.simNow()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return false
	}
	s.ended = true
	s.wallDur = time.Since(s.wallStart)
	if ok && sim > s.simEnd {
		s.simEnd = sim
	}
	return true
}

// Ended reports whether End has been called. Nil spans report true:
// there is nothing left to close.
func (s *Span) Ended() bool {
	if s == nil {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ended
}

// AddEvent attaches a leaf device event. Thread-safe.
func (s *Span) AddEvent(e Event) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.events = append(s.events, e)
	if end := e.Start + e.Dur; end > s.simEnd {
		s.simEnd = end
	}
	s.mu.Unlock()
}

// Children returns the nested spans.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Events returns the span's own leaf events.
func (s *Span) Events() []Event {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}

// WallDuration returns the host wall time the span covered (zero until
// End).
func (s *Span) WallDuration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wallDur
}

// SimInterval returns the simulated-clock interval the span covered.
func (s *Span) SimInterval() (start, end time.Duration) {
	if s == nil {
		return 0, 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.simStart, s.simEnd
}

// SimDuration returns the simulated time the span covered.
func (s *Span) SimDuration() time.Duration {
	start, end := s.SimInterval()
	if end < start {
		return 0
	}
	return end - start
}

// Totals aggregates device work over the span and all descendants.
func (s *Span) Totals() Totals {
	var tot Totals
	s.accumulate(&tot)
	return tot
}

func (s *Span) accumulate(tot *Totals) {
	if s == nil {
		return
	}
	for _, e := range s.Events() {
		if e.Cat == "transfer" {
			tot.Transfers++
			tot.CopyBytes += e.Bytes
		} else {
			tot.Kernels++
		}
		tot.FLOPs += e.FLOPs
		tot.DRAMBytes += e.DRAMBytes
		tot.SimTime += e.Dur
	}
	for _, c := range s.Children() {
		c.accumulate(tot)
	}
}

// Walk visits the span and its descendants depth-first, reporting each
// node's depth (the span itself is depth 0).
func (s *Span) Walk(fn func(depth int, s *Span)) {
	if s == nil {
		return
	}
	s.walk(0, fn)
}

func (s *Span) walk(depth int, fn func(int, *Span)) {
	fn(depth, s)
	for _, c := range s.Children() {
		c.walk(depth+1, fn)
	}
}

// Depth returns the maximum nesting depth under the span, counting leaf
// device events as one extra level (a root with one layer span holding
// kernels has depth 3).
func (s *Span) Depth() int {
	if s == nil {
		return 0
	}
	d := 1
	if len(s.Events()) > 0 {
		d = 2
	}
	for _, c := range s.Children() {
		if cd := c.Depth() + 1; cd > d {
			d = cd
		}
	}
	return d
}
