package telemetry

import (
	"math"
	"sync"
	"testing"
)

func TestSnapshotQuantile(t *testing.T) {
	h := NewRegistry().Histogram("q", nil, []float64{1, 2, 4, 8})
	// 10 observations: 4 in ≤1, 3 in ≤2, 2 in ≤4, 1 in ≤8.
	for _, v := range []float64{0.5, 0.5, 0.9, 1, 1.5, 2, 2, 3, 4, 7} {
		h.Observe(v)
	}
	s := h.Snapshot()
	cases := []struct{ q, want float64 }{
		{0.10, 1}, {0.40, 1}, {0.50, 2}, {0.70, 2}, {0.90, 4}, {0.95, 8}, {1, 8},
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := h.Quantile(0.5); got != 2 {
		t.Errorf("Histogram.Quantile(0.5) = %v, want 2", got)
	}
}

func TestSnapshotQuantileEdges(t *testing.T) {
	h := NewRegistry().Histogram("edges", nil, []float64{1, 2})
	if !math.IsNaN(h.Quantile(0.99)) {
		t.Fatal("quantile of an empty histogram must be NaN")
	}
	h.Observe(100) // lands beyond the last bound
	if got := h.Quantile(0.99); !math.IsInf(got, 1) {
		t.Fatalf("quantile in the overflow bucket = %v, want +Inf", got)
	}
}

func TestSnapshotFractionAbove(t *testing.T) {
	h := NewRegistry().Histogram("fa", nil, []float64{0.001, 0.002, 0.004})
	for _, v := range []float64{0.0005, 0.0015, 0.003, 0.01} {
		h.Observe(v) // one per bucket, one overflow
	}
	s := h.Snapshot()
	cases := []struct{ v, want float64 }{
		{0.001, 0.75}, // everything past the ≤1ms bucket
		{0.002, 0.5},
		{0.004, 0.25}, // only the overflow observation
		{0.5, 0},      // beyond the instrumented range
	}
	for _, c := range cases {
		if got := s.FractionAbove(c.v); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("FractionAbove(%v) = %v, want %v", c.v, got, c.want)
		}
	}
	if got := (HistogramSnapshot{}).FractionAbove(1); got != 0 {
		t.Errorf("empty FractionAbove = %v, want 0", got)
	}
}

// TestHistogramSnapshotRace is the -race regression for histogram
// snapshots under concurrent writes: quantiles must come from a copied
// bucket array, never the live one, and every snapshot must be
// internally consistent (cumulative counts non-decreasing and bounded
// by Count) no matter how hard Observe hammers the histogram.
func TestHistogramSnapshotRace(t *testing.T) {
	h := NewRegistry().Histogram("race", nil, ExpBuckets(1e-6, 2, 16))
	const writers, perWriter = 8, 2000

	var writersWG, readerWG sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(seed float64) {
			defer writersWG.Done()
			v := 1e-6
			for i := 0; i < perWriter; i++ {
				h.Observe(v * seed)
				v *= 1.001
			}
		}(float64(w + 1))
	}
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			var prev uint64
			for i, c := range s.Cumulative {
				if c < prev {
					t.Errorf("snapshot cumulative decreases at bucket %d: %d < %d", i, c, prev)
					return
				}
				prev = c
			}
			if prev > s.Count {
				t.Errorf("snapshot finite buckets hold %d > Count %d", prev, s.Count)
				return
			}
			if q := s.Quantile(0.99); s.Count > 0 && math.IsNaN(q) {
				t.Error("non-empty snapshot produced NaN quantile")
				return
			}
		}
	}()
	writersWG.Wait()
	close(stop)
	readerWG.Wait()

	if got := h.Count(); got != writers*perWriter {
		t.Fatalf("lost observations: count %d, want %d", got, writers*perWriter)
	}
}
