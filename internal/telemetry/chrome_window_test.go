package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// buildWindowTrace lays three layers end to end on the simulated
// clock — [0,2ms), [2,5ms), [5,9ms) — each with one kernel, under one
// run span covering all of it.
func buildWindowTrace() *Tracer {
	tr := NewTracer()
	var now time.Duration
	tr.SetSimClock(func() time.Duration { return now })

	run := tr.Root("run")
	type seg struct {
		name     string
		from, to time.Duration
	}
	for _, s := range []seg{
		{"conv1", 0, 2 * time.Millisecond},
		{"conv2", 2 * time.Millisecond, 5 * time.Millisecond},
		{"conv3", 5 * time.Millisecond, 9 * time.Millisecond},
	} {
		now = s.from
		sp := run.Child(s.name)
		sp.AddEvent(Event{Name: "k_" + s.name, Cat: "kernel", Start: s.from, Dur: s.to - s.from})
		now = s.to
		sp.End()
	}
	run.End()
	return tr
}

func windowNames(t *testing.T, tr *Tracer, since, until time.Duration) map[string]bool {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteChromeWindow(&buf, since, until); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, e := range decodeChromeBytes(t, buf.Bytes()) {
		if e["ph"] == "X" {
			names[e["name"].(string)] = true
		}
	}
	return names
}

func decodeChromeBytes(t *testing.T, b []byte) []map[string]any {
	t.Helper()
	var file map[string]any
	if err := json.Unmarshal(b, &file); err != nil {
		t.Fatalf("invalid chrome JSON: %v", err)
	}
	return eventsOf(t, file)
}

// TestWriteChromeWindowGolden pins the window-filter semantics: slices
// overlapping the half-open [since, until) survive whole, the rest
// disappear, and the unbounded window is byte-identical to WriteChrome.
func TestWriteChromeWindowGolden(t *testing.T) {
	tr := buildWindowTrace()

	cases := []struct {
		name         string
		since, until time.Duration
		want         []string
		wantAbsent   []string
	}{
		{"full", 0, MaxSimTime,
			[]string{"run", "conv1", "conv2", "conv3", "k_conv1", "k_conv2", "k_conv3"}, nil},
		{"middle", 3 * time.Millisecond, 4 * time.Millisecond,
			[]string{"run", "conv2", "k_conv2"}, []string{"conv1", "conv3", "k_conv1", "k_conv3"}},
		{"tail", 5 * time.Millisecond, MaxSimTime,
			[]string{"run", "conv2", "conv3"}, []string{"conv1", "k_conv1"}},
		{"head-halfopen", 0, 2 * time.Millisecond,
			[]string{"run", "conv1", "k_conv1"}, []string{"conv2", "conv3", "k_conv3"}},
		{"past-the-end", 20 * time.Millisecond, MaxSimTime,
			nil, []string{"run", "conv1", "conv2", "conv3"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			names := windowNames(t, tr, c.since, c.until)
			for _, w := range c.want {
				if !names[w] {
					t.Errorf("window [%v,%v): %q missing (have %v)", c.since, c.until, w, names)
				}
			}
			for _, a := range c.wantAbsent {
				if names[a] {
					t.Errorf("window [%v,%v): %q should be filtered out", c.since, c.until, a)
				}
			}
		})
	}

	// conv2 ends exactly at 5ms: a window starting there keeps it
	// (end >= since), while a window ending there drops conv3
	// (start < until fails) — the boundary cases above assert both.

	var full, unbounded bytes.Buffer
	if err := tr.WriteChrome(&full); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteChromeWindow(&unbounded, 0, MaxSimTime); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(full.Bytes(), unbounded.Bytes()) {
		t.Fatal("WriteChrome and the unbounded WriteChromeWindow diverge")
	}
}

// TestWriteChromeWindowDropsEmptyLanes: a device lane whose every span
// and event falls outside the window must not emit metadata rows.
func TestWriteChromeWindowDropsEmptyLanes(t *testing.T) {
	tr := NewTracer()
	// The root rides device 1's lane so lane 0 holds only the early
	// replica — the lane the window should drop entirely.
	root := tr.Root("multigpu").SetProc(1)
	early := root.Child("replica-early").SetProc(0)
	early.AddEvent(Event{Name: "k0", Cat: "kernel", Start: 0, Dur: time.Millisecond})
	early.SetSim(0, time.Millisecond).End()
	late := root.Child("replica-late").SetProc(1)
	late.AddEvent(Event{Name: "k1", Cat: "kernel", Start: 10 * time.Millisecond, Dur: time.Millisecond})
	late.SetSim(10*time.Millisecond, 11*time.Millisecond).End()
	root.SetSim(0, 11*time.Millisecond).End()

	var buf bytes.Buffer
	if err := tr.WriteChromeWindow(&buf, 9*time.Millisecond, MaxSimTime); err != nil {
		t.Fatal(err)
	}
	pids := map[float64]bool{}
	for _, e := range decodeChromeBytes(t, buf.Bytes()) {
		pids[e["pid"].(float64)] = true
	}
	if pids[1] {
		t.Fatal("device-0 lane survived a window that excludes all its work")
	}
	if !pids[2] {
		t.Fatal("device-1 lane missing")
	}
}
