package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func exportRegistry() *Registry {
	r := NewRegistry()
	r.Help("reqs_total", "Requests.")
	r.Counter("reqs_total", Labels{"impl": "cuDNN"}).Add(3)
	r.Gauge("mem_bytes", nil).Set(1024)
	h := r.Histogram("lat_seconds", Labels{"layer": "conv1"}, []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.5)
	return r
}

func TestWritePrometheus(t *testing.T) {
	var b strings.Builder
	if err := exportRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP reqs_total Requests.",
		"# TYPE reqs_total counter",
		`reqs_total{impl="cuDNN"} 3`,
		"# TYPE mem_bytes gauge",
		"mem_bytes 1024",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{layer="conv1",le="0.001"} 1`,
		`lat_seconds_bucket{layer="conv1",le="0.01"} 1`,
		`lat_seconds_bucket{layer="conv1",le="+Inf"} 2`,
		`lat_seconds_sum{layer="conv1"} 0.5005`,
		`lat_seconds_count{layer="conv1"} 2`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestSnapshotJSON(t *testing.T) {
	var b strings.Builder
	if err := exportRegistry().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal([]byte(b.String()), &snap); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if snap.Counters[`reqs_total{impl="cuDNN"}`] != 3 {
		t.Fatalf("counters %v", snap.Counters)
	}
	if snap.Gauges["mem_bytes"] != 1024 {
		t.Fatalf("gauges %v", snap.Gauges)
	}
	h, ok := snap.Histograms[`lat_seconds{layer="conv1"}`]
	if !ok || h.Count != 2 {
		t.Fatalf("histograms %v", snap.Histograms)
	}
}

func TestHandler(t *testing.T) {
	reg := exportRegistry()
	tr := NewTracer()
	s := tr.Root("run")
	s.AddEvent(Event{Name: "k", Cat: "kernel", Dur: time.Millisecond})
	s.End()
	h := Handler(reg, tr)

	get := func(path string) *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
		return w
	}

	if w := get("/metrics"); w.Code != 200 ||
		!strings.Contains(w.Body.String(), "reqs_total") ||
		!strings.HasPrefix(w.Header().Get("Content-Type"), "text/plain") {
		t.Fatalf("/metrics: code=%d type=%q", w.Code, w.Header().Get("Content-Type"))
	}
	if w := get("/metrics?format=json"); !strings.HasPrefix(w.Header().Get("Content-Type"), "application/json") {
		t.Fatal("/metrics?format=json should return JSON")
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal(get("/metrics.json").Body.Bytes(), &snap); err != nil {
		t.Fatalf("/metrics.json invalid: %v", err)
	}
	var trace map[string]any
	if err := json.Unmarshal(get("/trace").Body.Bytes(), &trace); err != nil {
		t.Fatalf("/trace invalid: %v", err)
	}
	if _, ok := trace["traceEvents"]; !ok {
		t.Fatal("/trace missing traceEvents")
	}
}
