package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// chromeEvent is the Chrome trace-event JSON schema. "X" events are
// complete slices; "s"/"f" pairs draw flow arrows; "M" rows are
// metadata naming processes and threads.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  *float64          `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	ID   uint64            `json:"id,omitempty"`
	BP   string            `json:"bp,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeFile is the object form of the trace-event format. The explicit
// displayTimeUnit makes Perfetto and chrome://tracing render the
// microsecond timestamps at sub-µs precision instead of the default
// millisecond rounding.
type chromeFile struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

// Thread lanes within each process: spans and kernels stack on the
// compute lane so Chrome's slice nesting mirrors the span tree;
// transfers get their own copy-engine lane, linked back to the compute
// lane with flow arrows.
const (
	tidCompute = 1
	tidCopy    = 2
)

func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// WriteChrome renders the whole span forest as Chrome trace-event JSON
// (object form), loadable in chrome://tracing or ui.perfetto.dev.
// Span nesting appears as stacked slices (run → model → layer → phase),
// kernel and transfer leaves as the innermost slices, and every
// host↔device transfer carries a flow arrow to the first kernel that
// runs after it lands.
func (t *Tracer) WriteChrome(w io.Writer) error {
	return t.WriteChromeWindow(w, 0, MaxSimTime)
}

// MaxSimTime is the open upper bound for WriteChromeWindow: a window
// ending at MaxSimTime keeps everything after its start.
const MaxSimTime = time.Duration(1<<63 - 1)

// WriteChromeWindow is WriteChrome restricted to the half-open
// simulated-time window [since, until): only spans and leaf events
// overlapping the window are exported (overlapping slices are kept
// whole, not clipped, so nesting stays intact). cmd/tracedump's
// -since/-last flags and the obs dashboards share these window
// semantics.
func (t *Tracer) WriteChromeWindow(w io.Writer, since, until time.Duration) error {
	overlaps := func(start, end time.Duration) bool {
		return end >= since && start < until
	}
	var out []chromeEvent
	procs := map[int]bool{}
	type leaf struct {
		e   Event
		pid int
	}
	var leaves []leaf

	for _, root := range t.Roots() {
		root.Walk(func(depth int, s *Span) {
			s.mu.Lock()
			pid := s.proc + 1
			start, end := s.simStart, s.simEnd
			name := s.name
			var args map[string]string
			if len(s.attrs) > 0 {
				args = make(map[string]string, len(s.attrs))
				for k, v := range s.attrs {
					args[k] = v
				}
			}
			events := append([]Event(nil), s.events...)
			s.mu.Unlock()

			if end < start {
				end = start
			}
			kept := false
			if overlaps(start, end) {
				kept = true
				dur := us(end - start)
				out = append(out, chromeEvent{
					Name: name, Cat: "span", Ph: "X",
					Ts: us(start), Dur: &dur,
					Pid: pid, Tid: tidCompute, Args: args,
				})
			}
			for _, e := range events {
				if overlaps(e.Start, e.Start+e.Dur) {
					kept = true
					leaves = append(leaves, leaf{e, pid})
				}
			}
			if kept {
				procs[pid] = true
			}
		})
	}

	// Leaf events, time-ordered per process so slices and flow arrows
	// come out deterministically.
	sort.SliceStable(leaves, func(i, j int) bool {
		if leaves[i].pid != leaves[j].pid {
			return leaves[i].pid < leaves[j].pid
		}
		return leaves[i].e.Start < leaves[j].e.Start
	})
	flowID := uint64(0)
	for i, l := range leaves {
		tid := tidCompute
		if l.e.Cat == "transfer" {
			tid = tidCopy
		}
		dur := us(l.e.Dur)
		out = append(out, chromeEvent{
			Name: l.e.Name, Cat: l.e.Cat, Ph: "X",
			Ts: us(l.e.Start), Dur: &dur,
			Pid: l.pid, Tid: tid,
		})
		if l.e.Cat != "transfer" {
			continue
		}
		// Flow arrow: transfer end → first kernel at or after it.
		for j := i + 1; j < len(leaves); j++ {
			k := leaves[j]
			if k.pid != l.pid {
				break
			}
			if k.e.Cat == "transfer" || k.e.Start+k.e.Dur < l.e.Start+l.e.Dur {
				continue
			}
			flowID++
			ts := us(l.e.Start + l.e.Dur)
			kts := us(k.e.Start)
			if kts < ts {
				kts = ts
			}
			out = append(out,
				chromeEvent{Name: l.e.Name, Cat: "flow", Ph: "s", Ts: ts, Pid: l.pid, Tid: tidCopy, ID: flowID},
				chromeEvent{Name: l.e.Name, Cat: "flow", Ph: "f", BP: "e", Ts: kts, Pid: k.pid, Tid: tidCompute, ID: flowID},
			)
			break
		}
	}

	// Process/thread metadata rows, sorted for stable output.
	pids := make([]int, 0, len(procs))
	for p := range procs {
		pids = append(pids, p)
	}
	sort.Ints(pids)
	for _, p := range pids {
		out = append(out,
			chromeEvent{Name: "process_name", Ph: "M", Pid: p, Tid: 0,
				Args: map[string]string{"name": fmt.Sprintf("device %d (simulated)", p-1)}},
			chromeEvent{Name: "thread_name", Ph: "M", Pid: p, Tid: tidCompute,
				Args: map[string]string{"name": "compute"}},
			chromeEvent{Name: "thread_name", Ph: "M", Pid: p, Tid: tidCopy,
				Args: map[string]string{"name": "copy engine"}},
		)
	}

	if out == nil {
		// A window that filters everything still yields a loadable
		// trace file: traceEvents must be [], not null.
		out = []chromeEvent{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeFile{DisplayTimeUnit: "ns", TraceEvents: out})
}
