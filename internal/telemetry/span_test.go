package telemetry

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestSpanNestingAndAttrs(t *testing.T) {
	tr := NewTracer()
	run := tr.Root("run").SetAttr("impl", "cuDNN")
	model := run.Child("model")
	layer := model.Child("conv1").SetAttr("kind", "Conv")

	if run.Attr("impl") != "cuDNN" || layer.Attr("kind") != "Conv" {
		t.Fatal("attributes not stored")
	}
	roots := tr.Roots()
	if len(roots) != 1 || roots[0] != run {
		t.Fatalf("roots = %v", roots)
	}
	if cs := run.Children(); len(cs) != 1 || cs[0] != model {
		t.Fatal("child not registered")
	}

	var names []string
	var depths []int
	run.Walk(func(d int, s *Span) {
		depths = append(depths, d)
		names = append(names, s.Name())
	})
	if fmt.Sprint(names) != "[run model conv1]" || fmt.Sprint(depths) != "[0 1 2]" {
		t.Fatalf("walk order %v depths %v", names, depths)
	}
	if run.Depth() != 3 {
		t.Fatalf("Depth = %d, want 3", run.Depth())
	}
	layer.AddEvent(Event{Name: "k", Cat: "kernel", Dur: time.Millisecond})
	if run.Depth() != 4 {
		t.Fatalf("Depth with leaf events = %d, want 4", run.Depth())
	}
}

func TestSimClockSampledAtStartAndEnd(t *testing.T) {
	tr := NewTracer()
	var now time.Duration
	tr.SetSimClock(func() time.Duration { return now })

	now = 10 * time.Millisecond
	s := tr.Root("span")
	now = 35 * time.Millisecond
	s.End()

	start, end := s.SimInterval()
	if start != 10*time.Millisecond || end != 35*time.Millisecond {
		t.Fatalf("interval [%v, %v], want [10ms, 35ms]", start, end)
	}
	if s.SimDuration() != 25*time.Millisecond {
		t.Fatalf("SimDuration = %v", s.SimDuration())
	}
	// Ending twice must not move the recorded interval.
	now = time.Second
	s.End()
	if _, end := s.SimInterval(); end != 35*time.Millisecond {
		t.Fatalf("second End moved simEnd to %v", end)
	}
}

func TestAddEventExtendsSimEnd(t *testing.T) {
	tr := NewTracer()
	tr.SetSimClock(func() time.Duration { return 0 })
	s := tr.Root("s")
	s.AddEvent(Event{Name: "k", Cat: "kernel", Start: 2 * time.Millisecond, Dur: 3 * time.Millisecond})
	s.End()
	if _, end := s.SimInterval(); end != 5*time.Millisecond {
		t.Fatalf("simEnd = %v, want 5ms (covering the event)", end)
	}
}

func TestSetSimOverride(t *testing.T) {
	tr := NewTracer()
	s := tr.Root("replica").SetSim(time.Millisecond, 4*time.Millisecond)
	if s.SimDuration() != 3*time.Millisecond {
		t.Fatalf("SimDuration = %v", s.SimDuration())
	}
}

func TestTotalsAggregatesRecursively(t *testing.T) {
	tr := NewTracer()
	root := tr.Root("root")
	a := root.Child("a")
	b := root.Child("b")
	a.AddEvent(Event{Name: "k1", Cat: "kernel", Dur: time.Millisecond, FLOPs: 100, DRAMBytes: 10})
	a.AddEvent(Event{Name: "cp", Cat: "transfer", Dur: 2 * time.Millisecond, Bytes: 512})
	b.AddEvent(Event{Name: "k2", Cat: "kernel", Dur: 3 * time.Millisecond, FLOPs: 200, DRAMBytes: 20})

	tot := root.Totals()
	if tot.Kernels != 2 || tot.Transfers != 1 {
		t.Fatalf("counts %+v", tot)
	}
	if tot.FLOPs != 300 || tot.DRAMBytes != 30 || tot.CopyBytes != 512 {
		t.Fatalf("work %+v", tot)
	}
	if tot.SimTime != 6*time.Millisecond {
		t.Fatalf("SimTime = %v", tot.SimTime)
	}
	if tr.EventCount() != 3 {
		t.Fatalf("EventCount = %d", tr.EventCount())
	}
}

func TestNilSpanIsSafe(t *testing.T) {
	var s *Span
	s.SetAttr("k", "v").SetProc(3).SetSim(0, time.Second)
	s.AddEvent(Event{})
	s.End()
	if s.Child("c") != nil || s.Name() != "" || s.Attr("k") != "" {
		t.Fatal("nil span leaked state")
	}
	if s.Depth() != 0 || s.Totals() != (Totals{}) || s.WallDuration() != 0 {
		t.Fatal("nil span reported non-zero aggregates")
	}
	s.Walk(func(int, *Span) { t.Fatal("walk visited a nil span") })
}

func TestChildInheritsProc(t *testing.T) {
	tr := NewTracer()
	r := tr.Root("r").SetProc(2)
	c := r.Child("c")
	c.mu.Lock()
	proc := c.proc
	c.mu.Unlock()
	if proc != 2 {
		t.Fatalf("child proc = %d, want 2", proc)
	}
}

func TestContextStartSpan(t *testing.T) {
	// Bare context: nil span, same context back.
	ctx, s := StartSpan(context.Background(), "x")
	if s != nil || FromContext(ctx) != nil {
		t.Fatal("bare context should produce a nil span")
	}

	// Tracer-only context: root span.
	tr := NewTracer()
	ctx = WithTracer(context.Background(), tr)
	ctx, root := StartSpan(ctx, "root")
	if root == nil || len(tr.Roots()) != 1 {
		t.Fatal("tracer context should open a root span")
	}

	// Span-carrying context: child span.
	_, child := StartSpan(ctx, "child")
	if child == nil || child.Name() != "child" {
		t.Fatal("no child span")
	}
	if cs := root.Children(); len(cs) != 1 || cs[0] != child {
		t.Fatal("child not nested under the context span")
	}

	// Registry plumbing.
	reg := NewRegistry()
	ctx = WithRegistry(ctx, reg)
	if RegistryFromContext(ctx) != reg {
		t.Fatal("registry lost in context")
	}
}

func TestConcurrentSpanUse(t *testing.T) {
	tr := NewTracer()
	var now time.Duration // guarded by clockMu
	var clockMu sync.Mutex
	tr.SetSimClock(func() time.Duration {
		clockMu.Lock()
		defer clockMu.Unlock()
		now += time.Microsecond
		return now
	})
	root := tr.Root("root")

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c := root.Child(fmt.Sprintf("g%d-%d", g, i))
				c.SetAttr("i", fmt.Sprint(i))
				c.AddEvent(Event{Name: "k", Cat: "kernel", Dur: time.Microsecond, FLOPs: 1})
				c.End()
			}
		}(g)
	}
	wg.Wait()
	root.End()

	tot := root.Totals()
	if tot.Kernels != 400 || tot.FLOPs != 400 {
		t.Fatalf("lost events under concurrency: %+v", tot)
	}
	if len(root.Children()) != 400 {
		t.Fatalf("lost children: %d", len(root.Children()))
	}
}
