package telemetry

import (
	"math"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", Labels{"impl": "cuDNN"})
	c.Inc()
	c.Add(2.5)
	c.Add(-5) // counters are monotonic; negative deltas dropped
	if c.Value() != 3.5 {
		t.Fatalf("counter = %v, want 3.5", c.Value())
	}
	// Same name+labels returns the same series.
	if r.Counter("reqs_total", Labels{"impl": "cuDNN"}) != c {
		t.Fatal("series identity broken")
	}
	// Different labels are a different series.
	if r.Counter("reqs_total", Labels{"impl": "fbfft"}) == c {
		t.Fatal("label sets collided")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("mem_bytes", nil)
	g.Set(100)
	g.Add(-30)
	if g.Value() != 70 {
		t.Fatalf("gauge = %v, want 70", g.Value())
	}
}

func TestHistogramCumulativeSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", nil, []float64{1, 10, 100})
	for _, v := range []float64{0.5, 0.5, 5, 50, 500} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if len(s.Bounds) != 3 || s.Bounds[0] != 1 {
		t.Fatalf("bounds %v", s.Bounds)
	}
	// le semantics: cumulative counts per upper bound.
	want := []uint64{2, 3, 4}
	for i, w := range want {
		if s.Cumulative[i] != w {
			t.Fatalf("cumulative %v, want %v", s.Cumulative, want)
		}
	}
	if s.Count != 5 || s.Sum != 556 {
		t.Fatalf("count=%d sum=%v", s.Count, s.Sum)
	}
	if h.Count() != 5 || h.Sum() != 556 {
		t.Fatal("Count/Sum accessors disagree with snapshot")
	}
}

func TestHistogramDefaultBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", nil, nil)
	if got := len(h.Snapshot().Bounds); got != len(DefaultLatencyBuckets) {
		t.Fatalf("%d default bounds", got)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1e-6, 2, 4)
	want := []float64{1e-6, 2e-6, 4e-6, 8e-6}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-18 {
			t.Fatalf("buckets %v, want %v", b, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ExpBuckets(0, 2, 1) should panic")
		}
	}()
	ExpBuckets(0, 2, 1)
}

func TestLabelsRenderSortedAndEscaped(t *testing.T) {
	l := Labels{"b": "two", "a": `with "quote"`}
	got := l.render()
	want := `{a="with \"quote\"",b="two"}`
	if got != want {
		t.Fatalf("render = %s, want %s", got, want)
	}
	if (Labels{}).render() != "" {
		t.Fatal("empty labels should render empty")
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("registering m as gauge after counter should panic")
		}
	}()
	r.Gauge("m", nil)
}

func TestDefaultRegistry(t *testing.T) {
	if Default() == nil || Default() != Default() {
		t.Fatal("Default registry must be a stable singleton")
	}
}

func TestConcurrentMetricUpdates(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("c", Labels{"l": "x"}).Inc()
				r.Gauge("g", nil).Add(1)
				r.Histogram("h", nil, nil).Observe(1e-5)
			}
		}()
	}
	wg.Wait()
	if v := r.Counter("c", Labels{"l": "x"}).Value(); v != 4000 {
		t.Fatalf("counter = %v, want 4000", v)
	}
	if v := r.Gauge("g", nil).Value(); v != 4000 {
		t.Fatalf("gauge = %v, want 4000", v)
	}
	if n := r.Histogram("h", nil, nil).Count(); n != 4000 {
		t.Fatalf("histogram count = %d, want 4000", n)
	}
}
