package telemetry

import "context"

type spanKey struct{}
type tracerKey struct{}
type registryKey struct{}

// WithTracer returns a context carrying the tracer; StartSpan on it
// opens root spans.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey{}, t)
}

// WithSpan returns a context carrying the span as the current parent.
func WithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, s)
}

// FromContext returns the current span, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// WithRegistry returns a context carrying the metrics registry.
func WithRegistry(ctx context.Context, r *Registry) context.Context {
	return context.WithValue(ctx, registryKey{}, r)
}

// RegistryFromContext returns the context's registry, or nil.
func RegistryFromContext(ctx context.Context) *Registry {
	r, _ := ctx.Value(registryKey{}).(*Registry)
	return r
}

// StartSpan opens a child of the context's current span (or a root span
// if the context only carries a tracer) and returns the derived context.
// With neither present it returns a nil span whose methods all no-op,
// so instrumented call sites need no conditionals.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if parent := FromContext(ctx); parent != nil {
		s := parent.Child(name)
		return WithSpan(ctx, s), s
	}
	if t, _ := ctx.Value(tracerKey{}).(*Tracer); t != nil {
		s := t.Root(name)
		return WithSpan(ctx, s), s
	}
	return ctx, nil
}
