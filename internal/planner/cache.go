package planner

import (
	"sort"
	"sync"

	"gpucnn/internal/conv"
)

// cacheKey identifies one decision. Devices are keyed by spec name —
// the granularity at which gpusim device profiles differ.
type cacheKey struct {
	device    string
	objective Objective
	cfg       conv.Config
}

// Cache stores decisions keyed by (device, objective, config). One
// process-wide DefaultCache backs every planner unless Options.Cache
// overrides it, so decisions made while planning one serving replica
// are reused by every other replica's multigpu.PlanCache plan path —
// the fleet scores each layer once, not once per replica.
type Cache struct {
	mu     sync.Mutex
	m      map[cacheKey]Decision
	hits   int64
	misses int64
}

// DefaultCache is the process-wide decision cache.
var DefaultCache = NewCache()

// NewCache creates an empty decision cache. Tests use private caches
// for isolation from the process-wide default.
func NewCache() *Cache {
	return &Cache{m: make(map[cacheKey]Decision)}
}

func (c *Cache) lookup(device string, obj Objective, cfg conv.Config) (Decision, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.m[cacheKey{device, obj, cfg}]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return d, ok
}

// store inserts the decision unless another writer got there first, and
// returns the decision that ended up cached.
func (c *Cache) store(d Decision) Decision {
	key := cacheKey{d.Device, d.Objective, d.Cfg}
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.m[key]; ok {
		return prev
	}
	c.m[key] = d
	return d
}

// CacheStats is a point-in-time cache counters snapshot.
type CacheStats struct {
	Entries int
	Hits    int64
	Misses  int64
}

// Stats returns the cache's counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Entries: len(c.m), Hits: c.hits, Misses: c.misses}
}

// Snapshot returns every cached decision, ordered by device then
// config string — the dashboard's decision table.
func (c *Cache) Snapshot() []Decision {
	c.mu.Lock()
	out := make([]Decision, 0, len(c.m))
	for _, d := range c.m {
		out = append(out, d)
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Device != out[j].Device {
			return out[i].Device < out[j].Device
		}
		return out[i].Cfg.String() < out[j].Cfg.String()
	})
	return out
}

// Reset drops every entry and zeroes the counters.
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m = make(map[cacheKey]Decision)
	c.hits, c.misses = 0, 0
}
