// Package planner implements plan-time engine autotuning: the paper's
// core finding is that no single convolution strategy wins everywhere —
// the best implementation flips with (batch, image, filters, kernel,
// stride) — so, like cuDNN's heuristics pass, the planner scores every
// candidate engine for a concrete layer configuration through the
// gpusim cost model and delegates to the predicted winner.
//
// Scoring runs each candidate's full kernel plan (DeviceSpec.simulate
// over one training iteration or inference pass) on a private scratch
// device, so decisions never touch the caller's simulated clock or
// memory accountant. The top candidates can optionally be re-ranked by
// a one-shot measured probe — one real (CPU-executed) forward pass —
// and the winning decision is cached per (device, objective, config)
// so repeated plans, including every replica of a serving fleet going
// through multigpu.PlanCache, reuse it without re-scoring.
//
// The result is exposed as the eighth registry engine, "Autotuned"
// (see engine.go), validated against the paper's Figure 3 sweeps: per
// cell it must land within tolerance of the best fixed engine.
package planner

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"gpucnn/internal/conv"
	"gpucnn/internal/gpusim"
	"gpucnn/internal/impls"
	"gpucnn/internal/tensor"
	"gpucnn/internal/workload"
)

// Objective selects what a candidate's cost model scores: a full
// training iteration (transfer + forward + both backward passes, the
// paper's Figure 3 quantity) or a serving-style inference pass
// (transfer + forward).
type Objective int

const (
	// Training scores one full training iteration.
	Training Objective = iota
	// Inference scores one forward-only serving pass.
	Inference
)

// String returns the objective name used in cache keys and telemetry.
func (o Objective) String() string {
	if o == Inference {
		return "inference"
	}
	return "training"
}

// Candidate is one engine's scorecard inside a Decision.
type Candidate struct {
	Engine    string
	Strategy  conv.Strategy
	Predicted time.Duration // simulated cost of one objective pass
	Measured  time.Duration // wall time of the one-shot probe (0 = not probed)
	Skipped   string        // why the engine was excluded ("" = scored)
}

// Decision is the planner's cached verdict for one layer configuration
// on one device.
type Decision struct {
	Device    string
	Cfg       conv.Config
	Objective Objective

	Engine    string        // winner
	Strategy  conv.Strategy // winner's convolution family
	Reason    string        // human-readable rationale
	Predicted time.Duration // winner's simulated cost
	Measured  time.Duration // winner's probed cost (0 = not probed)

	Candidates []Candidate // every candidate, fastest predicted first

	// FromCache is set on decisions served from the cache rather than
	// freshly scored. It is not persisted.
	FromCache bool
}

// Margin returns how much slower the predicted runner-up is than the
// winner, as a fraction (0.15 = 15% slower). Zero when there is no
// scored runner-up.
func (d Decision) Margin() float64 {
	var runnerUp time.Duration
	for _, c := range d.Candidates {
		if c.Skipped != "" || c.Engine == d.Engine {
			continue
		}
		if runnerUp == 0 || c.Predicted < runnerUp {
			runnerUp = c.Predicted
		}
	}
	if runnerUp == 0 || d.Predicted <= 0 {
		return 0
	}
	return float64(runnerUp-d.Predicted) / float64(d.Predicted)
}

// Options configure a Planner. The zero value scores the paper's seven
// engines plus the Winograd and Theano-legacy extensions for the
// training objective, with no measured probe, against the shared
// DefaultCache.
type Options struct {
	// Candidates is the engine pool the planner chooses from. Nil means
	// DefaultCandidates().
	Candidates []impls.Engine
	// Objective is what the cost model scores (default Training).
	Objective Objective
	// ProbeTopK > 0 refines the decision by running a one-shot measured
	// probe — one real, numerics-executing forward pass — on the K
	// candidates with the best predicted cost, and ranking those by
	// measured time. Expensive (real arithmetic at the layer's full
	// shape); leave 0 for cost-model-only decisions.
	ProbeTopK int
	// Cache holds decisions across planners and replicas. Nil means the
	// process-wide DefaultCache.
	Cache *Cache
}

// DefaultCandidates returns the engine pool a zero-Options planner
// scores: the paper's seven implementations plus the cuDNN-Winograd
// and Theano-legacy extensions. The Auto dispatcher is excluded — it
// is itself a selection policy, not a strategy.
func DefaultCandidates() []impls.Engine {
	return append(impls.All(), impls.NewWinograd(), impls.NewTheanoLegacy())
}

// Planner scores candidate engines through the gpusim cost model and
// caches the per-configuration winner. Safe for concurrent use.
type Planner struct {
	candidates []impls.Engine
	byName     map[string]impls.Engine
	objective  Objective
	probeTopK  int
	cache      *Cache

	scored atomic.Int64 // cost-model evaluations run
	probed atomic.Int64 // measured probes run
}

// New creates a planner.
func New(opts Options) *Planner {
	if opts.Candidates == nil {
		opts.Candidates = DefaultCandidates()
	}
	if opts.Cache == nil {
		opts.Cache = DefaultCache
	}
	p := &Planner{
		candidates: opts.Candidates,
		byName:     make(map[string]impls.Engine, len(opts.Candidates)),
		objective:  opts.Objective,
		probeTopK:  opts.ProbeTopK,
		cache:      opts.Cache,
	}
	for _, e := range opts.Candidates {
		p.byName[e.Name()] = e
	}
	return p
}

// Cache returns the decision cache the planner writes through.
func (p *Planner) Cache() *Cache { return p.cache }

// Scored returns how many cost-model evaluations the planner has run —
// cache hits run none, which is what the determinism tests pin.
func (p *Planner) Scored() int64 { return p.scored.Load() }

// Probed returns how many measured probes the planner has run.
func (p *Planner) Probed() int64 { return p.probed.Load() }

// Engine resolves a decision's winner to a runnable engine: the
// planner's own candidate instance when it has one, the registry
// otherwise (a cached decision may have been scored by a planner with
// a different candidate pool).
func (p *Planner) Engine(d Decision) (impls.Engine, error) {
	if e, ok := p.byName[d.Engine]; ok {
		return e, nil
	}
	return impls.ByName(d.Engine)
}

// Decide returns the planner's decision for the configuration on the
// device spec, scoring the candidates on a cache miss and reusing the
// cached verdict otherwise.
func (p *Planner) Decide(spec gpusim.DeviceSpec, cfg conv.Config) (Decision, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return Decision{}, err
	}
	if d, ok := p.cache.lookup(spec.Name, p.objective, cfg); ok {
		d.FromCache = true
		observeDecision(d)
		return d, nil
	}
	d, err := p.decide(spec, cfg)
	if err != nil {
		return Decision{}, err
	}
	// First writer wins so concurrent deciders converge on one verdict
	// (scoring is deterministic, so any winner is the same winner).
	d = p.cache.store(d)
	observeDecision(d)
	return d, nil
}

func (p *Planner) decide(spec gpusim.DeviceSpec, cfg conv.Config) (Decision, error) {
	d := Decision{Device: spec.Name, Cfg: cfg, Objective: p.objective}
	for _, e := range p.candidates {
		c := Candidate{Engine: e.Name(), Strategy: e.Strategy()}
		if err := e.Supports(cfg); err != nil {
			c.Skipped = err.Error()
			d.Candidates = append(d.Candidates, c)
			continue
		}
		cost, err := p.score(spec, cfg, e)
		if err != nil {
			c.Skipped = err.Error()
			d.Candidates = append(d.Candidates, c)
			continue
		}
		c.Predicted = cost
		// Strategy after scoring: dispatching candidates (none in the
		// default pool) report what they delegated to.
		c.Strategy = e.Strategy()
		d.Candidates = append(d.Candidates, c)
	}
	sort.SliceStable(d.Candidates, func(i, j int) bool {
		ci, cj := d.Candidates[i], d.Candidates[j]
		if (ci.Skipped == "") != (cj.Skipped == "") {
			return ci.Skipped == ""
		}
		if ci.Skipped != "" {
			return false
		}
		return ci.Predicted < cj.Predicted
	})
	scored := 0
	for _, c := range d.Candidates {
		if c.Skipped == "" {
			scored++
		}
	}
	if scored == 0 {
		var why []string
		for _, c := range d.Candidates {
			why = append(why, fmt.Sprintf("%s: %s", c.Engine, c.Skipped))
		}
		return Decision{}, fmt.Errorf("planner: no engine can run %v on %s (%s)",
			cfg, spec.Name, strings.Join(why, "; "))
	}

	if p.probeTopK > 1 && scored > 1 {
		p.probe(spec, cfg, &d, scored)
	}

	win := d.Candidates[0]
	d.Engine, d.Strategy = win.Engine, win.Strategy
	d.Predicted, d.Measured = win.Predicted, win.Measured
	switch {
	case scored == 1:
		d.Reason = fmt.Sprintf("only supporting engine (%s)", win.Strategy)
	case win.Measured > 0:
		d.Reason = fmt.Sprintf("measured probe: %v beats %s (predicted %v vs %v)",
			win.Measured.Round(time.Microsecond), d.Candidates[1].Engine,
			win.Predicted.Round(time.Microsecond), d.Candidates[1].Predicted.Round(time.Microsecond))
	default:
		d.Reason = fmt.Sprintf("cost model: %v vs %s %v (+%.0f%%)",
			win.Predicted.Round(time.Microsecond), d.Candidates[1].Engine,
			d.Candidates[1].Predicted.Round(time.Microsecond), 100*d.Margin())
	}
	return d, nil
}

// score runs one objective pass of the engine's kernel plan on a
// private scratch device and returns the simulated cost. The
// simulation is analytic and deterministic: microseconds of wall time,
// no arithmetic.
func (p *Planner) score(spec gpusim.DeviceSpec, cfg conv.Config, e impls.Engine) (time.Duration, error) {
	p.scored.Add(1)
	dev := gpusim.New(spec)
	plan, err := e.Plan(dev, cfg)
	if err != nil {
		return 0, err
	}
	defer plan.Release()
	if p.objective == Inference {
		err = plan.Inference()
	} else {
		err = plan.Iteration()
	}
	if err != nil {
		return 0, err
	}
	return dev.Elapsed(), nil
}

// probe re-ranks the top-K predicted candidates by one real forward
// pass each (full numerics on synthetic tensors), the one-shot
// measured refinement for layers the cost model ranks too close to
// call. Candidates whose probe fails keep their predicted rank.
func (p *Planner) probe(spec gpusim.DeviceSpec, cfg conv.Config, d *Decision, scored int) {
	k := p.probeTopK
	if k > scored {
		k = scored
	}
	x, w := workload.SyntheticTensors(cfg, 1)
	y := tensor.New(cfg.OutputShape()...)
	for i := 0; i < k; i++ {
		c := &d.Candidates[i]
		e, ok := p.byName[c.Engine]
		if !ok {
			continue
		}
		dev := gpusim.New(spec)
		plan, err := e.Plan(dev, cfg)
		if err != nil {
			continue
		}
		p.probed.Add(1)
		//lint:ignore wallclock the probe is the sanctioned model-vs-measured calibration boundary
		start := time.Now()
		err = plan.Forward(x, w, y)
		if err == nil {
			//lint:ignore wallclock measured refinement deliberately reads host time at the probe boundary
			c.Measured = time.Since(start)
		}
		plan.Release()
	}
	sort.SliceStable(d.Candidates[:k], func(i, j int) bool {
		ci, cj := d.Candidates[i], d.Candidates[j]
		if (ci.Measured > 0) != (cj.Measured > 0) {
			return ci.Measured > 0
		}
		return ci.Measured < cj.Measured
	})
}
