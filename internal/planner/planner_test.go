package planner

import (
	"strings"
	"testing"

	"gpucnn/internal/conv"
	"gpucnn/internal/gpusim"
	"gpucnn/internal/impls"
	"gpucnn/internal/telemetry"
	"gpucnn/internal/workload"
)

func k40c() gpusim.DeviceSpec { return gpusim.TeslaK40c() }

func decide(t *testing.T, p *Planner, cfg conv.Config) Decision {
	t.Helper()
	d, err := p.Decide(k40c(), cfg)
	if err != nil {
		t.Fatalf("Decide(%v): %v", cfg, err)
	}
	return d
}

// TestCrossoversTableI pins the planner's choice on the paper's five
// Table I shapes: FFT takes the large-kernel layers (Conv1 k=11,
// Conv3 k=9, Conv4 k=7), Winograd the 3x3 layers (Conv2, Conv5) —
// the per-shape flipping the paper's Section V guidance describes,
// now derived from the cost model instead of prose rules.
func TestCrossoversTableI(t *testing.T) {
	want := map[string]struct {
		engine   string
		strategy conv.Strategy
	}{
		"Conv1": {"fbfft", conv.FFT},
		"Conv2": {"cuDNN-Winograd", conv.Direct},
		"Conv3": {"fbfft", conv.FFT},
		"Conv4": {"fbfft", conv.FFT},
		"Conv5": {"cuDNN-Winograd", conv.Direct},
	}
	p := New(Options{Cache: NewCache()})
	for _, nc := range workload.TableI() {
		d := decide(t, p, nc.Cfg)
		w := want[nc.Name]
		if d.Engine != w.engine || d.Strategy != w.strategy {
			t.Errorf("%s %v: picked %s (%s), want %s (%s)",
				nc.Name, nc.Cfg, d.Engine, d.Strategy, w.engine, w.strategy)
		}
		if d.Predicted <= 0 {
			t.Errorf("%s: no predicted cost on the decision", nc.Name)
		}
	}
}

// TestKernelCrossover pins the FFT crossover on the Figure 3d sweep:
// below k=7 the transform overhead loses to spatial strategies
// (Winograd at 3, direct at 5); from k=7 up fbfft wins — the
// kernel-size boundary Zlateski et al.'s FFT analysis predicts and the
// paper's "large kernels -> fbfft" guidance draws at the same point.
func TestKernelCrossover(t *testing.T) {
	p := New(Options{Cache: NewCache()})
	for _, cfg := range workload.KernelSweep() {
		d := decide(t, p, cfg)
		if cfg.Kernel >= 7 {
			if d.Strategy != conv.FFT {
				t.Errorf("k=%d: picked %s (%s), want an FFT engine", cfg.Kernel, d.Engine, d.Strategy)
			}
			continue
		}
		if d.Strategy == conv.FFT {
			t.Errorf("k=%d: picked %s (fft), want a spatial strategy below the crossover", cfg.Kernel, d.Engine)
		}
	}
	// The boundary cells themselves.
	base := workload.Base()
	base.Kernel = 3
	if d := decide(t, p, base); d.Engine != "cuDNN-Winograd" {
		t.Errorf("k=3: picked %s, want cuDNN-Winograd", d.Engine)
	}
	base.Kernel = 7
	if d := decide(t, p, base); d.Engine != "fbfft" {
		t.Errorf("k=7: picked %s, want fbfft", d.Engine)
	}
}

// TestStrideExcludesFFT: FFT engines cannot run strides above 1, so
// every strided cell must fall to a spatial strategy (cuDNN on the
// Figure 3e shapes), with the FFT candidates recorded as skipped
// rather than silently absent.
func TestStrideExcludesFFT(t *testing.T) {
	p := New(Options{Cache: NewCache()})
	for _, cfg := range workload.StrideSweep() {
		d := decide(t, p, cfg)
		if cfg.Stride == 1 {
			continue
		}
		if d.Strategy == conv.FFT {
			t.Fatalf("s=%d: picked FFT engine %s for a strided layer", cfg.Stride, d.Engine)
		}
		if d.Engine != "cuDNN" {
			t.Errorf("s=%d: picked %s, want cuDNN", cfg.Stride, d.Engine)
		}
		skipped := 0
		for _, c := range d.Candidates {
			if c.Strategy == conv.FFT && c.Skipped != "" {
				skipped++
			}
		}
		if skipped != 2 {
			t.Errorf("s=%d: %d FFT candidates recorded skipped, want 2 (fbfft, Theano-fft)", cfg.Stride, skipped)
		}
	}
}

// TestDecisionCacheDeterminism: repeating a decision hits the cache —
// no engine is re-scored, no probe re-runs, and the verdict is
// identical.
func TestDecisionCacheDeterminism(t *testing.T) {
	small := conv.Config{Batch: 2, Input: 16, Channels: 4, Filters: 8, Kernel: 3, Stride: 1}
	p := New(Options{Cache: NewCache(), ProbeTopK: 2})

	first, err := p.Decide(k40c(), small)
	if err != nil {
		t.Fatal(err)
	}
	if first.FromCache {
		t.Fatal("first decision claims to come from the cache")
	}
	scored, probed := p.Scored(), p.Probed()
	if scored == 0 || probed == 0 {
		t.Fatalf("first decision scored %d / probed %d candidates, want > 0 each", scored, probed)
	}
	if first.Measured <= 0 {
		t.Error("probed decision carries no measured cost")
	}

	second, err := p.Decide(k40c(), small)
	if err != nil {
		t.Fatal(err)
	}
	if !second.FromCache {
		t.Error("repeated decision missed the cache")
	}
	if p.Scored() != scored {
		t.Errorf("repeated decision re-scored: %d -> %d evaluations", scored, p.Scored())
	}
	if p.Probed() != probed {
		t.Errorf("repeated decision re-probed: %d -> %d probes", probed, p.Probed())
	}
	if second.Engine != first.Engine || second.Predicted != first.Predicted {
		t.Errorf("cache returned a different verdict: %s/%v vs %s/%v",
			second.Engine, second.Predicted, first.Engine, first.Predicted)
	}
	stats := p.Cache().Stats()
	if stats.Entries != 1 || stats.Hits != 1 || stats.Misses != 1 {
		t.Errorf("cache stats = %+v, want 1 entry, 1 hit, 1 miss", stats)
	}
}

// TestDecisionsPerDevice: the cache keys on the device, so a
// small-memory spec gets its own decision — and one that skips
// engines whose footprint no longer fits.
func TestDecisionsPerDevice(t *testing.T) {
	p := New(Options{Cache: NewCache()})
	cfg := workload.Base() // k=11: fbfft on the full K40c

	if d := decide(t, p, cfg); d.Engine != "fbfft" {
		t.Fatalf("K40c pick = %s, want fbfft", d.Engine)
	}
	small := k40c()
	small.Name = "small-mem"
	small.GlobalMemBytes = 600 << 20
	d, err := p.Decide(small, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.Strategy == conv.FFT {
		t.Errorf("600 MB device picked FFT engine %s; its grids cannot fit", d.Engine)
	}
	var fbfft *Candidate
	for i := range d.Candidates {
		if d.Candidates[i].Engine == "fbfft" {
			fbfft = &d.Candidates[i]
		}
	}
	if fbfft == nil || fbfft.Skipped == "" {
		t.Error("fbfft should be recorded as skipped (OOM) on the small device")
	}
	if got := p.Cache().Stats().Entries; got != 2 {
		t.Errorf("cache entries = %d, want one per device", got)
	}
}

// TestAutotunedInRegistry: the planner registers the eighth engine.
func TestAutotunedInRegistry(t *testing.T) {
	e, err := impls.ByName("autotuned")
	if err != nil {
		t.Fatal(err)
	}
	if e.Name() != "Autotuned" {
		t.Errorf("ByName returned %q", e.Name())
	}
	found := false
	for _, x := range impls.Extensions() {
		if x.Name() == "Autotuned" {
			found = true
		}
	}
	if !found {
		t.Error("Autotuned missing from impls.Extensions()")
	}
}

// TestAutotunedDelegatesAndReportsStrategy: planning through the
// engine runs the winner's kernels on the caller's device and makes
// Strategy() track the delegation.
func TestAutotunedDelegatesAndReportsStrategy(t *testing.T) {
	e := NewAutotuned(Options{Cache: NewCache()})
	if got := e.Strategy(); got != conv.Unrolling {
		t.Errorf("pre-plan Strategy() = %v, want unrolling fallback", got)
	}
	dev := gpusim.New(k40c())
	p, err := e.Plan(dev, workload.Base()) // k=11 -> fbfft
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Iteration(); err != nil {
		t.Fatal(err)
	}
	p.Release()
	found := false
	for _, k := range dev.Prof.Kernels() {
		if strings.Contains(k.Name, "decimateInFrequency") {
			found = true
		}
	}
	if !found {
		t.Fatal("autotuned at k=11 should have delegated to fbfft")
	}
	if got := e.Strategy(); got != conv.FFT {
		t.Errorf("Strategy() after FFT delegation = %v, want fft", got)
	}
	// The decision overhead must not leak onto the caller's device:
	// only the delegated plan's kernels may appear there.
	strided := workload.Base()
	strided.Stride = 2
	dev2 := gpusim.New(k40c())
	p2, err := e.Plan(dev2, strided)
	if err != nil {
		t.Fatal(err)
	}
	p2.Release()
	if n := dev2.Launches(); n != 0 {
		t.Errorf("planning launched %d kernels on the caller's device before any pass", n)
	}
	if got := e.Strategy(); got != conv.Unrolling {
		t.Errorf("Strategy() after strided delegation = %v, want unrolling", got)
	}
}

// TestAutotunedSpanAttributes: a telemetry recorder installed on the
// device (the bench.MeasureCtx path) receives the decision as span
// attributes — engine, strategy, predicted cost, cache state.
func TestAutotunedSpanAttributes(t *testing.T) {
	e := NewAutotuned(Options{Cache: NewCache()})
	dev := gpusim.New(k40c())
	tr := telemetry.NewTracer()
	root := tr.Root("measure")
	rec := telemetry.NewRecorder()
	rec.Attach(root)
	dev.SetSink(rec)

	p, err := e.Plan(dev, workload.Base())
	if err != nil {
		t.Fatal(err)
	}
	p.Release()
	root.End()

	if got := root.Attr("planner.engine"); got != "fbfft" {
		t.Errorf("planner.engine attr = %q, want fbfft", got)
	}
	if got := root.Attr("planner.strategy"); got != "fft" {
		t.Errorf("planner.strategy attr = %q, want fft", got)
	}
	if root.Attr("planner.predicted") == "" {
		t.Error("planner.predicted attr missing")
	}
	if got := root.Attr("planner.cached"); got != "false" {
		t.Errorf("planner.cached attr = %q, want false on first plan", got)
	}
}

// TestPlanCachePathSharesDecisions: two multigpu.PlanCaches — two
// serving replicas — backed by planners sharing one decision cache
// score each configuration exactly once.
func TestPlanCachePathSharesDecisions(t *testing.T) {
	shared := NewCache()
	engineA := NewAutotuned(Options{Cache: shared})
	engineB := NewAutotuned(Options{Cache: shared})
	cfg := conv.Config{Batch: 4, Input: 32, Channels: 3, Filters: 8, Kernel: 5, Stride: 1}

	plannerA, ok := PlannerOf(engineA)
	if !ok {
		t.Fatal("PlannerOf failed on an Autotuned engine")
	}
	plannerB, _ := PlannerOf(engineB)

	devA, devB := gpusim.New(k40c()), gpusim.New(k40c())
	pa, err := engineA.Plan(devA, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pa.Release()
	scoredAfterA := plannerA.Scored()
	if scoredAfterA == 0 {
		t.Fatal("replica A's planner scored nothing")
	}
	pb, err := engineB.Plan(devB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pb.Release()
	if plannerB.Scored() != 0 {
		t.Errorf("replica B re-scored %d candidates despite the shared cache", plannerB.Scored())
	}
	if stats := shared.Stats(); stats.Misses != 1 || stats.Hits != 1 {
		t.Errorf("shared cache stats = %+v, want exactly one miss and one hit", stats)
	}
}
