package planner

import (
	"context"
	"testing"

	"gpucnn/internal/bench"
	"gpucnn/internal/gpusim"
	"gpucnn/internal/impls"
	"gpucnn/internal/workload"
)

// BenchmarkPlannerDecide measures a cold decision: scoring every
// candidate's kernel plan through the cost model for the paper's base
// configuration.
func BenchmarkPlannerDecide(b *testing.B) {
	spec := gpusim.TeslaK40c()
	cfg := workload.Base()
	for i := 0; i < b.N; i++ {
		p := New(Options{Cache: NewCache()})
		if _, err := p.Decide(spec, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlannerDecideCached measures the steady-state path every
// serving replica's PlanCache hits: a decision served from the cache.
func BenchmarkPlannerDecideCached(b *testing.B) {
	spec := gpusim.TeslaK40c()
	cfg := workload.Base()
	p := New(Options{Cache: NewCache()})
	if _, err := p.Decide(spec, cfg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Decide(spec, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlannerDecisionQuality re-runs the five Figure 3 sweeps
// with Autotuned in the engine set and reports the mean per-cell ratio
// of Autotuned's time to the best fixed engine's as the "ratio"
// metric — 1.0 means the planner always picks the per-cell winner,
// below 1.0 means its extended candidate pool (Winograd) beats every
// fixed engine. `make bench-planner` snapshots this into
// BENCH_planner.json; `make bench-planner-compare` fails the build if
// it regresses.
func BenchmarkPlannerDecisionQuality(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		autotuned := NewAutotuned(Options{Cache: NewCache()})
		engines := append(impls.All(), autotuned)
		var sum float64
		var cells int
		for _, sweep := range workload.SweepNames() {
			rows := bench.Figure3Ctx(context.Background(), sweep, gpusim.TeslaK40c(),
				bench.Options{Engines: engines})
			for _, row := range rows {
				best, ok := bestFixed(row)
				if !ok {
					continue
				}
				cell, ok := row.CellFor("Autotuned")
				if !ok || !cell.Ok() {
					b.Fatalf("%s sweep value %d: missing Autotuned cell", sweep, row.Value)
				}
				sum += cell.Time.Seconds() / best.Time.Seconds()
				cells++
			}
		}
		ratio = sum / float64(cells)
	}
	b.ReportMetric(ratio, "ratio")
}
