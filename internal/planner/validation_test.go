package planner

import (
	"context"
	"testing"

	"gpucnn/internal/bench"
	"gpucnn/internal/gpusim"
	"gpucnn/internal/impls"
	"gpucnn/internal/workload"
)

// TestAutotunedNeverWorseOnFigure3Sweeps is the planner's acceptance
// gate: re-run every Figure 3 sweep with Autotuned appended to the
// paper's seven engines and require its cell to land within tolerance
// of the best fixed engine's — per cell, across all five sweeps. The
// planner delegates to whatever the cost model ranks fastest, and the
// sweep measures through the same model, so the only slack needed is
// for candidates outside the paper's seven (Winograd can only make it
// faster, never slower).
func TestAutotunedNeverWorseOnFigure3Sweeps(t *testing.T) {
	const tolerance = 1.10
	autotuned := NewAutotuned(Options{Cache: NewCache()})
	engines := append(impls.All(), autotuned)
	for _, sweep := range workload.SweepNames() {
		rows := bench.Figure3Ctx(context.Background(), sweep, gpusim.TeslaK40c(),
			bench.Options{Engines: engines})
		if len(rows) == 0 {
			t.Fatalf("%s sweep produced no rows", sweep)
		}
		for _, row := range rows {
			best, ok := bestFixed(row)
			if !ok {
				continue // no fixed engine ran the cell; nothing to compare
			}
			cell, ok := row.CellFor("Autotuned")
			if !ok {
				t.Fatalf("%s sweep value %d: no Autotuned cell", sweep, row.Value)
			}
			if !cell.Ok() {
				t.Errorf("%s sweep value %d: Autotuned failed (%s) where %s ran",
					sweep, row.Value, cell.Unsupported, best.Impl)
				continue
			}
			if ratio := cell.Time.Seconds() / best.Time.Seconds(); ratio > tolerance {
				t.Errorf("%s sweep value %d: Autotuned %v is %.2fx the best fixed engine %s (%v)",
					sweep, row.Value, cell.Time, ratio, best.Impl, best.Time)
			}
		}
	}
}

// bestFixed returns the fastest valid cell among the paper's seven
// fixed engines (excluding Autotuned itself).
func bestFixed(row bench.Row) (bench.Cell, bool) {
	var best bench.Cell
	found := false
	for _, c := range row.Cells {
		if c.Impl == "Autotuned" || !c.Ok() {
			continue
		}
		if !found || c.Time < best.Time {
			best, found = c, true
		}
	}
	return best, found
}
