package planner

import (
	"fmt"
	"sync"

	"gpucnn/internal/conv"
	"gpucnn/internal/gpusim"
	"gpucnn/internal/impls"
	"gpucnn/internal/telemetry"
)

// init exposes the planner as the eighth registry engine: "Autotuned"
// resolves through impls.ByName and appears in impls.Extensions() for
// every binary that links this package.
func init() {
	impls.RegisterExtension(func() impls.Engine { return NewAutotuned(Options{}) })
}

// autotuned is the planner as an impls.Engine: Plan and PlanShared
// decide per configuration and delegate to the winner, so one engine
// value dropped into a sweep, a model, or a serving fleet picks its
// strategy per layer the way the paper's analysis says it should.
type autotuned struct {
	p *Planner

	mu   sync.Mutex
	last *conv.Strategy // strategy of the most recent delegation
}

// NewAutotuned returns the cost-model-driven engine. The zero Options
// value matches the instance registered as "Autotuned": the default
// candidate pool, training objective, no probe, shared DefaultCache.
func NewAutotuned(opts Options) impls.Engine {
	return &autotuned{p: New(opts)}
}

// Planner returns the underlying planner (decision cache, counters) of
// an Autotuned engine, or false for any other engine.
func PlannerOf(e impls.Engine) (*Planner, bool) {
	a, ok := e.(*autotuned)
	if !ok {
		return nil, false
	}
	return a.p, true
}

func (e *autotuned) Name() string { return "Autotuned" }

// Strategy reports the convolution family of the most recent
// delegation (the planner picks per configuration, so there is no
// single static answer); before any plan it reports the unrolling
// family of the cuDNN fallback.
func (e *autotuned) Strategy() conv.Strategy {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.last != nil {
		return *e.last
	}
	return conv.Unrolling
}

// Supports reports nil when at least one candidate engine can run the
// configuration.
func (e *autotuned) Supports(cfg conv.Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	var first error
	for _, c := range e.p.candidates {
		err := c.Supports(cfg)
		if err == nil {
			return nil
		}
		if first == nil {
			first = err
		}
	}
	return fmt.Errorf("autotuned: no candidate supports %v: %w", cfg, first)
}

func (e *autotuned) Plan(dev *gpusim.Device, cfg conv.Config) (impls.Plan, error) {
	return e.planWith(dev, cfg, false)
}

// PlanShared plans with framework-owned activations.
func (e *autotuned) PlanShared(dev *gpusim.Device, cfg conv.Config) (impls.Plan, error) {
	return e.planWith(dev, cfg, true)
}

func (e *autotuned) planWith(dev *gpusim.Device, cfg conv.Config, shared bool) (impls.Plan, error) {
	d, err := e.p.Decide(dev.Spec, cfg)
	if err != nil {
		return nil, err
	}
	chosen, err := e.p.Engine(d)
	if err != nil {
		return nil, fmt.Errorf("autotuned: %w", err)
	}
	e.mu.Lock()
	s := d.Strategy
	e.last = &s
	e.mu.Unlock()
	annotateSpan(dev, d)
	var p impls.Plan
	if shared {
		p, err = chosen.PlanShared(dev, cfg)
	} else {
		p, err = chosen.Plan(dev, cfg)
	}
	if err != nil {
		// %w keeps gpusim.OOMError visible to errors.As in the sweeps.
		return nil, fmt.Errorf("autotuned (%s, %s): %w", d.Engine, d.Reason, err)
	}
	return p, nil
}

// spanCurrent is the slice of telemetry.Recorder the engine needs: the
// span currently attached to the device's event sink.
type spanCurrent interface{ Current() *telemetry.Span }

// annotateSpan records the decision on the span currently collecting
// the device's events, so every measurement of an autotuned plan
// carries which engine ran and what the planner expected it to cost —
// predicted-vs-measured is then a trace query, not a log dig.
func annotateSpan(dev *gpusim.Device, d Decision) {
	sc, ok := dev.Sink().(spanCurrent)
	if !ok {
		return
	}
	sp := sc.Current()
	if sp == nil {
		return
	}
	sp.SetAttr("planner.engine", d.Engine).
		SetAttr("planner.strategy", d.Strategy.String()).
		SetAttr("planner.reason", d.Reason).
		SetAttr("planner.predicted", d.Predicted.String()).
		SetAttr("planner.cached", fmt.Sprint(d.FromCache))
	if d.Measured > 0 {
		sp.SetAttr("planner.measured", d.Measured.String())
	}
}
