package planner

import (
	"fmt"
	"sync/atomic"

	"gpucnn/internal/obs"
)

// attachedPlane receives per-decision counters once AttachPlane is
// called; obs instruments are nil-safe, so the unattached state costs
// one atomic load per decision.
var attachedPlane atomic.Pointer[obs.Plane]

// AttachPlane surfaces the planner on the observability plane: a
// windowed counter per chosen strategy ("planner.pick.fft", ...),
// decision and cache-hit counters, and a "planner" dashboard section
// rendering the DefaultCache decision table — which engine each layer
// of a live serving fleet is running on, and why, at /debug/dash.
func AttachPlane(p *obs.Plane) {
	if p == nil {
		return
	}
	attachedPlane.Store(p)
	p.Section("planner", func() map[string]any {
		stats := DefaultCache.Stats()
		out := map[string]any{
			"decisions":    stats.Entries,
			"cache_hits":   stats.Hits,
			"cache_misses": stats.Misses,
		}
		for _, d := range DefaultCache.Snapshot() {
			key := fmt.Sprintf("pick %s %v", d.Device, d.Cfg)
			out[key] = fmt.Sprintf("%s (%s, predicted %v)",
				d.Engine, d.Strategy, d.Predicted.Round(1000))
		}
		return out
	})
}

// observeDecision bumps the attached plane's counters for one decision
// (fresh or cache-served).
func observeDecision(d Decision) {
	p := attachedPlane.Load()
	if p == nil {
		return
	}
	p.Counter("planner.decisions").Inc()
	if d.FromCache {
		p.Counter("planner.decisions.cached").Inc()
	}
	p.Counter("planner.pick." + d.Strategy.String()).Inc()
}
