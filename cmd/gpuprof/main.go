// Command gpuprof reproduces the paper's Figure 6 and Tables I–II: the
// nvprof-style metric profile (runtime, achieved occupancy, IPC, warp
// execution efficiency, global load/store efficiency, shared-memory
// efficiency) of every implementation over the five Table I
// benchmarking configurations, weighted over each implementation's top
// kernels, plus the per-implementation register / shared-memory usage.
//
// Usage:
//
//	gpuprof [-table2] [-j N] [-timeout d]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"gpucnn/internal/bench"
	"gpucnn/internal/telemetry"
	"gpucnn/internal/workload"
)

func main() {
	table2Only := flag.Bool("table2", false, "print only Table II (resource usage)")
	jobs := flag.Int("j", 0, "parallel measurement workers (0 = one per CPU)")
	timeout := flag.Duration("timeout", 0, "per-measurement timeout (0 = none)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	ctx = telemetry.WithRegistry(ctx, telemetry.Default())
	opt := bench.Options{Workers: *jobs, Timeout: *timeout}

	if !*table2Only {
		fmt.Println("Table I — convolution configurations for benchmarking")
		for _, nc := range workload.TableI() {
			fmt.Printf("  %s %v (channels %d)\n", nc.Name, nc.Cfg, nc.Cfg.Channels)
		}
		fmt.Println()
		fmt.Println("Figure 6 — GPU performance profiling (weighted over top kernels)")
		fmt.Print(bench.RenderFigure6(bench.Figure6Ctx(ctx, opt)))
		fmt.Println()
	}
	fmt.Println("Table II — registers per thread and shared memory per block")
	fmt.Print(bench.RenderTableII(bench.TableIICtx(ctx, opt)))
}
