// Command hotspot reproduces the paper's Figure 2: the per-layer-kind
// runtime breakdown of one training iteration of AlexNet, GoogLeNet,
// VGG and OverFeat on the simulated Tesla K40c, showing that
// convolutional layers dominate total runtime.
//
// Usage:
//
//	hotspot
package main

import (
	"fmt"

	"gpucnn/internal/bench"
)

func main() {
	fmt.Println("Figure 2 — runtime breakdown of real-life CNN models (simulated K40c)")
	fmt.Println()
	fmt.Print(bench.RenderFigure2(bench.Figure2()))
}
