// Command runall regenerates every experiment of the paper in one run —
// Figures 2 through 7 and Tables I–II — printing each section to
// stdout. This is the end-to-end reproduction entry point referenced by
// EXPERIMENTS.md.
//
// Usage:
//
//	runall
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"gpucnn/internal/bench"
	"gpucnn/internal/workload"
)

func section(title string) {
	fmt.Println()
	fmt.Println("================================================================")
	fmt.Println(title)
	fmt.Println("================================================================")
}

func main() {
	csvDir := flag.String("csv-dir", "", "also write per-sweep CSV files into this directory")
	flag.Parse()
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	section("Figure 2 — runtime breakdown of real-life CNN models")
	fmt.Print(bench.RenderFigure2(bench.Figure2()))

	for _, sweep := range workload.SweepNames() {
		section(fmt.Sprintf("Figure 3 (%s sweep) — runtime comparison", sweep))
		rows := bench.Figure3(sweep)
		fmt.Print(bench.RenderSweepTimes(sweep, rows))
		section(fmt.Sprintf("Figure 5 (%s sweep) — peak memory usage", sweep))
		fmt.Print(bench.RenderSweepMemory(sweep, rows))
		if *csvDir != "" {
			writeCSV(*csvDir, "figure3_"+sweep+".csv", bench.CSVSweep(sweep, rows, false))
			writeCSV(*csvDir, "figure5_"+sweep+".csv", bench.CSVSweep(sweep, rows, true))
		}
	}

	section("Shape limitations (Section IV.B summary)")
	fmt.Print(bench.RenderShapeMatrix())

	section("Figure 4 — hotspot kernels in convolutional layers")
	fmt.Print(bench.RenderFigure4(bench.Figure4()))

	section("Table I — convolution configurations for benchmarking")
	for _, nc := range workload.TableI() {
		fmt.Printf("  %s %v (channels %d)\n", nc.Name, nc.Cfg, nc.Cfg.Channels)
	}

	section("Figure 6 — GPU performance profiling")
	fmt.Print(bench.RenderFigure6(bench.Figure6()))

	section("Figure 7 — data transfer overheads")
	fmt.Print(bench.RenderFigure7(bench.Figure7()))

	section("Table II — register and shared-memory usage")
	fmt.Print(bench.RenderTableII(bench.TableII()))
}

func writeCSV(dir, name, content string) {
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}
