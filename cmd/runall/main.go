// Command runall regenerates every experiment of the paper in one run —
// Figures 2 through 7 and Tables I–II — printing each section to
// stdout. This is the end-to-end reproduction entry point referenced by
// EXPERIMENTS.md.
//
// Measurements fan out over a bounded worker pool (-j) with results
// placed deterministically, so the output is byte-identical at any
// parallelism. Ctrl-C cancels the remaining cells cooperatively.
//
// Usage:
//
//	runall [-j N] [-timeout d] [-csv-dir dir] [-metrics file]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"

	"gpucnn/internal/bench"
	"gpucnn/internal/telemetry"
	"gpucnn/internal/workload"
)

func section(title string) {
	fmt.Println()
	fmt.Println("================================================================")
	fmt.Println(title)
	fmt.Println("================================================================")
}

func main() {
	csvDir := flag.String("csv-dir", "", "also write per-sweep CSV files into this directory")
	jobs := flag.Int("j", 0, "parallel measurement workers (0 = one per CPU)")
	timeout := flag.Duration("timeout", 0, "per-measurement timeout (0 = none)")
	metrics := flag.String("metrics", "", "write telemetry (worker utilization, cell latencies) in Prometheus text format to this file after the run (\"-\" for stderr)")
	flag.Parse()
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	ctx = telemetry.WithRegistry(ctx, telemetry.Default())
	opt := bench.Options{Workers: *jobs, Timeout: *timeout}
	spec, _ := bench.SpecByName("k40c")

	section("Figure 2 — runtime breakdown of real-life CNN models")
	fmt.Print(bench.RenderFigure2(bench.Figure2Ctx(ctx, opt)))

	for _, sweep := range workload.SweepNames() {
		section(fmt.Sprintf("Figure 3 (%s sweep) — runtime comparison", sweep))
		rows := bench.Figure3Ctx(ctx, sweep, spec, opt)
		fmt.Print(bench.RenderSweepTimes(sweep, rows))
		section(fmt.Sprintf("Figure 5 (%s sweep) — peak memory usage", sweep))
		fmt.Print(bench.RenderSweepMemory(sweep, rows))
		if *csvDir != "" {
			writeCSV(*csvDir, "figure3_"+sweep+".csv", bench.CSVSweep(sweep, rows, false))
			writeCSV(*csvDir, "figure5_"+sweep+".csv", bench.CSVSweep(sweep, rows, true))
		}
	}

	section("Shape limitations (Section IV.B summary)")
	fmt.Print(bench.RenderShapeMatrix())

	section("Figure 4 — hotspot kernels in convolutional layers")
	fmt.Print(bench.RenderFigure4(bench.Figure4()))

	section("Table I — convolution configurations for benchmarking")
	for _, nc := range workload.TableI() {
		fmt.Printf("  %s %v (channels %d)\n", nc.Name, nc.Cfg, nc.Cfg.Channels)
	}

	section("Figure 6 — GPU performance profiling")
	fmt.Print(bench.RenderFigure6(bench.Figure6Ctx(ctx, opt)))

	section("Figure 7 — data transfer overheads")
	fmt.Print(bench.RenderFigure7(bench.Figure7Ctx(ctx, opt)))

	section("Table II — register and shared-memory usage")
	fmt.Print(bench.RenderTableII(bench.TableIICtx(ctx, opt)))

	if *metrics != "" {
		writeMetrics(*metrics)
	}
	if ctx.Err() != nil {
		log.Fatal("runall: interrupted; remaining cells were canceled")
	}
}

func writeCSV(dir, name, content string) {
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}

func writeMetrics(path string) {
	if path == "-" {
		if err := telemetry.Default().WritePrometheus(os.Stderr); err != nil {
			log.Fatal(err)
		}
		return
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := telemetry.Default().WritePrometheus(f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}
