// Command serve runs the inference-serving layer over the simulated
// cluster and renders a throughput-vs-latency table across batching
// policies: the batch=1 baseline against dynamic batching at several
// max-wait settings. The per-image amortisation the paper measures in
// Figure 3a reappears here as a serving result — larger formed batches
// buy simulated throughput at a bounded queueing-latency cost.
//
// With -dash the process also serves the live observability plane:
// rolling-window latency/queue metrics, SLO burn-rate states and
// profile attributions at /debug/dash (text) and /debug/dash.json,
// plus the current policy's /metrics. Point cmd/obswatch at it, or
// curl it mid-run. -linger keeps the dashboard up after the table so
// the final minute of history stays inspectable.
//
// With -fleet the command instead sweeps a sharded serving fleet:
// for each initial replica count in -shards it builds a pool of
// replicas (each a full server over a private cluster shard), routes
// an open-loop trace-driven workload (-trace ramp|diurnal|burst|steady)
// through the front door (-route hash|least-loaded), lets the
// SLO-burn-driven autoscaler grow and shrink the pool, and renders the
// throughput-vs-p99 frontier with the replica range each row visited
// plus the autoscaler's decision log.
//
// Usage:
//
//	serve [-devices 4] [-engine cuDNN] [-clients 64] [-requests 2000]
//	      [-maxbatch 32] [-waits 500us,2ms,8ms] [-timescale 1]
//	      [-input 32] [-filters 32] [-kernel 5] [-metrics out.json]
//	      [-dash :8080] [-linger] [-profiles dir]
//	      [-slo-p99 10ms] [-slo-target 0.99] [-slo-shedmax 0.05]
//	serve -fleet [-shards 1,2,4] [-shard-devices 2] [-route hash]
//	      [-trace ramp] [-base-rps 2000] [-peak-rps 60000]
//	      [-trace-dur 4s] [-trace-seed 1] [-as-max 0] [-as-interval 250ms]
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"gpucnn/internal/conv"
	"gpucnn/internal/gpusim"
	"gpucnn/internal/impls"
	"gpucnn/internal/multigpu"
	"gpucnn/internal/obs"
	"gpucnn/internal/par"
	"gpucnn/internal/planner"
	"gpucnn/internal/serve"
	"gpucnn/internal/telemetry"
)

func main() {
	devices := flag.Int("devices", 4, "simulated GPUs in the cluster")
	engine := flag.String("engine", "cuDNN", "convolution engine, e.g. cuDNN or Autotuned (must support arbitrary batch sizes)")
	clients := flag.Int("clients", 64, "closed-loop load-generator clients")
	requests := flag.Int("requests", 2000, "requests to complete per policy")
	maxBatch := flag.Int("maxbatch", 32, "dynamic batcher flush size")
	waits := flag.String("waits", "500us,2ms,8ms", "comma-separated max-wait settings for the dynamic policies")
	queueCap := flag.Int("queue", 0, "admission queue bound (0 = 4×maxbatch)")
	timeScale := flag.Float64("timescale", 1, "wall occupancy per simulated second (negative disables)")
	input := flag.Int("input", 32, "model input extent (square)")
	channels := flag.Int("channels", 3, "model input channels")
	filters := flag.Int("filters", 32, "model output feature maps")
	kernel := flag.Int("kernel", 5, "model kernel extent")
	stride := flag.Int("stride", 1, "model stride")
	pad := flag.Int("pad", 2, "model padding")
	metrics := flag.String("metrics", "", "write per-policy registry snapshots to this JSON file")
	dashAddr := flag.String("dash", "", "serve the live dashboard (/debug/dash, /debug/dash.json, /metrics) on this address")
	linger := flag.Bool("linger", false, "with -dash: keep the dashboard up after the table (ctrl-C to exit)")
	profDir := flag.String("profiles", "", "with -dash: periodically write CPU/heap profiles to this directory")
	sloP99 := flag.Duration("slo-p99", 10*time.Millisecond, "SLO objective: e2e p99 latency threshold")
	sloTarget := flag.Float64("slo-target", 0.99, "SLO objective: fraction of requests that must land under -slo-p99")
	sloShed := flag.Float64("slo-shedmax", 0.05, "SLO objective: maximum tolerated shed (rejection) rate")
	fleetMode := flag.Bool("fleet", false, "sweep a sharded serving fleet under a trace-driven open loop instead of the policy table")
	shards := flag.String("shards", "1,2,4", "with -fleet: comma-separated initial replica counts, one frontier row each")
	shardDevices := flag.Int("shard-devices", 2, "with -fleet: simulated GPUs per replica shard")
	route := flag.String("route", "hash", "with -fleet: front-door routing (hash or least-loaded)")
	traceShape := flag.String("trace", "ramp", "with -fleet: arrival curve (steady, ramp, diurnal or burst)")
	baseRPS := flag.Float64("base-rps", 2000, "with -fleet: trace base arrival rate")
	peakRPS := flag.Float64("peak-rps", 60000, "with -fleet: trace peak arrival rate")
	traceDur := flag.Duration("trace-dur", 4*time.Second, "with -fleet: trace duration per row")
	traceSeed := flag.Int64("trace-seed", 1, "with -fleet: trace RNG seed (same seed, same trace)")
	asMax := flag.Int("as-max", 0, "with -fleet: autoscaler max replicas per row (0 = 2× the row's initial count)")
	asInterval := flag.Duration("as-interval", 250*time.Millisecond, "with -fleet: autoscaler tick interval")
	flag.Parse()

	eng, err := impls.ByName(*engine)
	if err != nil {
		log.Fatalf("serve: %v", err)
	}
	model := conv.Config{Input: *input, Channels: *channels, Filters: *filters,
		Kernel: *kernel, Stride: *stride, Pad: *pad}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// One plane across every policy: the dashboard's rolling windows
	// span the whole run, so policy-to-policy shifts in p99 and shed
	// rate show up as live series rather than separate snapshots.
	plane := obs.NewPlane(obs.Options{})
	// Kernel workspace-arena hit rate and high-water mark on the dash:
	// the fused im2col path's memory win shows up here live.
	obs.AttachWorkspace(plane)
	// Plan-time autotuner decisions on the dash: with -engine Autotuned
	// (the planner registers the eighth engine via its init), the
	// "planner" section shows which engine each layer runs on and why,
	// plus per-strategy pick counters.
	planner.AttachPlane(plane)
	slo := serve.SLOConfig{
		E2EThreshold: sloP99.Seconds(),
		E2ETarget:    *sloTarget,
		ShedMax:      *sloShed,
	}

	// The Prometheus registry stays per-policy (the -metrics file keys
	// snapshots by policy), so the HTTP /metrics routes read whichever
	// registry the current policy is writing through.
	var liveReg atomic.Pointer[telemetry.Registry]
	if *dashAddr != "" {
		mux := http.NewServeMux()
		obs.Mount(mux, plane)
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if reg := liveReg.Load(); reg != nil {
				_ = reg.WritePrometheus(w)
			}
		})
		mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			if reg := liveReg.Load(); reg != nil {
				_ = reg.WriteJSON(w)
			}
		})
		srv := &http.Server{Addr: *dashAddr, Handler: mux}
		par.Go("serve.dash", func() {
			if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Fatalf("serve: dashboard: %v", err)
			}
		})
		fmt.Printf("dashboard: http://%s/debug/dash\n", *dashAddr)

		if *profDir != "" {
			prof := obs.NewProfiler(obs.ProfilerConfig{Plane: plane, Dir: *profDir})
			prof.Start()
			defer prof.Stop()
			plane.AttachProfiler(prof)
		}
	}

	if *fleetMode {
		runFleetSweep(ctx, fleetSweep{
			plane: plane, liveReg: &liveReg,
			engine: eng, model: model, slo: slo,
			shards: *shards, shardDevices: *shardDevices,
			routeName: *route, traceName: *traceShape,
			baseRPS: *baseRPS, peakRPS: *peakRPS,
			dur: *traceDur, seed: *traceSeed,
			maxBatch: *maxBatch, maxWait: 2 * time.Millisecond, queueCap: *queueCap,
			timeScale: *timeScale, asMax: *asMax, asInterval: *asInterval,
		})
		if *dashAddr != "" && *linger && ctx.Err() == nil {
			fmt.Printf("\ndashboard still live at http://%s/debug/dash — ctrl-C to exit\n", *dashAddr)
			<-ctx.Done()
		}
		return
	}

	type policy struct {
		name     string
		maxBatch int
		maxWait  time.Duration
	}
	policies := []policy{{"batch=1", 1, time.Millisecond}}
	for _, w := range strings.Split(*waits, ",") {
		d, err := time.ParseDuration(strings.TrimSpace(w))
		if err != nil {
			log.Fatalf("serve: bad -waits entry %q: %v", w, err)
		}
		policies = append(policies, policy{"dynamic", *maxBatch, d})
	}

	spec := gpusim.TeslaK40c()
	fmt.Printf("Inference serving — dynamic batching over the simulated cluster\n")
	perImage := model.WithDefaults()
	perImage.Batch = 1
	fmt.Printf("model %v · engine %s · %d× %s · %d closed-loop clients · %d requests per policy\n\n",
		perImage, eng.Name(), *devices, spec.Name, *clients, *requests)
	fmt.Printf("%-9s %-9s %-11s %-10s %-11s %-10s %-10s %-10s %-9s %s\n",
		"policy", "max-wait", "mean-batch", "req/s", "sim img/s", "p50", "p99", "queue-p99", "shed", "slo")

	snapshots := map[string]telemetry.MetricsSnapshot{}
	for _, p := range policies {
		reg := telemetry.NewRegistry()
		liveReg.Store(reg)
		s, err := serve.New(multigpu.New(*devices, spec), serve.Options{
			Engine:    eng,
			Model:     model,
			MaxBatch:  p.maxBatch,
			MaxWait:   p.maxWait,
			QueueCap:  *queueCap,
			TimeScale: *timeScale,
			Registry:  reg,
			Obs:       plane,
			SLO:       slo,
		})
		if err != nil {
			log.Fatalf("serve: %v", err)
		}
		rep := serve.RunLoad(ctx, s, serve.LoadOptions{Clients: *clients, Requests: *requests})
		stats := s.Stats()
		sloState := worstState(s.Monitor())
		s.Close()
		wait := p.maxWait.String()
		if p.maxBatch == 1 {
			wait = "—"
		}
		fmt.Printf("%-9s %-9s %-11.1f %-10.0f %-11.0f %-10v %-10v %-10v %-9s %s\n",
			p.name, wait, rep.MeanBatch, rep.ThroughputRPS, rep.SimImagesPerSec,
			rep.P50.Round(time.Microsecond), rep.P99.Round(time.Microsecond),
			rep.QueueP99.Round(time.Microsecond),
			shedColumn(stats), sloState)
		key := p.name
		if p.maxBatch > 1 {
			key = fmt.Sprintf("dynamic-%s", p.maxWait)
		}
		snapshots[key] = reg.Snapshot()
		if ctx.Err() != nil {
			break
		}
	}

	fmt.Printf("\nsim img/s = served images per simulated GPU-busy second (batch amortisation, Figure 3a);\n")
	fmt.Printf("req/s and percentiles are wall-clock under the closed loop (timescale %g);\n", *timeScale)
	fmt.Printf("shed = rejected/offered under the bounded admission queue; slo = worst burn-rate state at close.\n")

	if *metrics != "" {
		enc, err := json.MarshalIndent(snapshots, "", "  ")
		if err != nil {
			log.Fatalf("serve: %v", err)
		}
		if err := os.WriteFile(*metrics, append(enc, '\n'), 0o644); err != nil {
			log.Fatalf("serve: %v", err)
		}
		fmt.Printf("\nwrote per-policy metrics to %s\n", *metrics)
	}

	if *dashAddr != "" && *linger && ctx.Err() == nil {
		fmt.Printf("\ndashboard still live at http://%s/debug/dash — ctrl-C to exit\n", *dashAddr)
		<-ctx.Done()
	}
}

// shedColumn renders the shed rate over everything the policy was
// offered (admitted plus rejected).
func shedColumn(st serve.Stats) string {
	offered := st.Submitted + st.Rejected
	if offered == 0 {
		return "—"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(st.Rejected)/float64(offered))
}

// worstState reports the monitor's worst objective state at the end of
// a policy run.
func worstState(m *obs.Monitor) string {
	if m == nil {
		return "—"
	}
	return m.Worst().String()
}

// fleetSweep carries the -fleet mode's resolved configuration.
type fleetSweep struct {
	plane   *obs.Plane
	liveReg *atomic.Pointer[telemetry.Registry]
	engine  impls.Engine
	model   conv.Config
	slo     serve.SLOConfig

	shards       string
	shardDevices int
	routeName    string
	traceName    string

	baseRPS, peakRPS float64
	dur              time.Duration
	seed             int64

	maxBatch, queueCap int
	maxWait            time.Duration
	timeScale          float64
	asMax              int
	asInterval         time.Duration
}

// runFleetSweep renders the throughput-vs-p99 frontier: one row per
// initial replica count, each replaying the same seeded trace through
// its own fleet while the autoscaler reacts to the fleet monitor's
// burn states.
func runFleetSweep(ctx context.Context, cfg fleetSweep) {
	routePolicy, err := serve.RoutePolicyByName(cfg.routeName)
	if err != nil {
		log.Fatalf("serve: %v", err)
	}
	shape, err := serve.TraceShapeByName(cfg.traceName)
	if err != nil {
		log.Fatalf("serve: %v", err)
	}
	var counts []int
	for _, s := range strings.Split(cfg.shards, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n <= 0 {
			log.Fatalf("serve: bad -shards entry %q", s)
		}
		counts = append(counts, n)
	}

	trace := serve.TraceOptions{
		Shape: shape, BaseRPS: cfg.baseRPS, PeakRPS: cfg.peakRPS,
		Duration: cfg.dur, Seed: cfg.seed, HeavyTailP: 0.05,
	}
	perImage := cfg.model.WithDefaults()
	perImage.Batch = 1
	fmt.Printf("Sharded serving fleet — SLO-aware autoscaling under an open-loop %s trace\n", shape)
	fmt.Printf("model %v · engine %s · %d GPUs per shard · route %s · %.0f→%.0f RPS over %v (seed %d)\n\n",
		perImage, cfg.engine.Name(), cfg.shardDevices, routePolicy, cfg.baseRPS, cfg.peakRPS, cfg.dur, cfg.seed)
	fmt.Printf("%-7s %-10s %-10s %-10s %-10s %-10s %-9s %-6s %s\n",
		"shards", "replicas", "offer/s", "served/s", "p50", "p99", "shed", "slo", "scale events")

	type rowLog struct {
		n      int
		events []serve.ScaleEvent
	}
	var logs []rowLog
	for _, n := range counts {
		reg := telemetry.NewRegistry()
		cfg.liveReg.Store(reg)
		maxReplicas := cfg.asMax
		if maxReplicas <= 0 {
			maxReplicas = 2 * n
		}
		opts := serve.FleetOptions{
			Replicas: n, ShardDevices: cfg.shardDevices,
			Server: serve.Options{
				Engine: cfg.engine, Model: cfg.model,
				MaxBatch: cfg.maxBatch, MaxWait: cfg.maxWait, QueueCap: cfg.queueCap,
				TimeScale: cfg.timeScale, Registry: reg, Obs: cfg.plane,
			},
			Route: routePolicy, SLO: cfg.slo,
			Autoscale: serve.AutoscaleConfig{
				Min: n, Max: maxReplicas, Interval: cfg.asInterval,
				ScaleOutAfter: 2, ScaleInAfter: 6, Cooldown: 2,
			},
		}
		f, err := serve.NewFleet(opts)
		if err != nil {
			log.Fatalf("serve: fleet[%d]: %v", n, err)
		}
		rep := serve.RunTrace(ctx, f, trace)
		events := f.Autoscaler().Events()
		slo := worstState(f.Monitor())
		f.Close()

		shed := "—"
		if rep.Offered > 0 {
			shed = fmt.Sprintf("%.1f%%", 100*float64(rep.Shed)/float64(rep.Offered))
		}
		fmt.Printf("%-7d %-10s %-10.0f %-10.0f %-10v %-10v %-9s %-6s %d\n",
			n, fmt.Sprintf("%d→%d", rep.ReplicaMin, rep.ReplicaMax),
			rep.OfferedRPS, rep.ThroughputRPS,
			rep.P50.Round(time.Microsecond), rep.P99.Round(time.Microsecond),
			shed, slo, len(events))
		logs = append(logs, rowLog{n, events})
		if ctx.Err() != nil {
			break
		}
	}

	fmt.Printf("\nreplicas = fleet size range the autoscaler visited during the trace;\n")
	fmt.Printf("shed counts server rejections plus open-loop client drops over offered arrivals.\n")
	for _, l := range logs {
		if len(l.events) == 0 {
			continue
		}
		fmt.Printf("\nfleet[%d] autoscaler log:\n", l.n)
		for _, e := range l.events {
			fmt.Printf("  %s %s\n", e.At.Format("15:04:05.000"), e)
		}
	}
}
