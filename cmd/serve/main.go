// Command serve runs the inference-serving layer over the simulated
// cluster and renders a throughput-vs-latency table across batching
// policies: the batch=1 baseline against dynamic batching at several
// max-wait settings. The per-image amortisation the paper measures in
// Figure 3a reappears here as a serving result — larger formed batches
// buy simulated throughput at a bounded queueing-latency cost.
//
// Usage:
//
//	serve [-devices 4] [-engine cuDNN] [-clients 64] [-requests 2000]
//	      [-maxbatch 32] [-waits 500us,2ms,8ms] [-timescale 1]
//	      [-input 32] [-filters 32] [-kernel 5] [-metrics out.json]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"time"

	"gpucnn/internal/conv"
	"gpucnn/internal/gpusim"
	"gpucnn/internal/impls"
	"gpucnn/internal/multigpu"
	"gpucnn/internal/serve"
	"gpucnn/internal/telemetry"
)

func main() {
	devices := flag.Int("devices", 4, "simulated GPUs in the cluster")
	engine := flag.String("engine", "cuDNN", "convolution engine (must support arbitrary batch sizes)")
	clients := flag.Int("clients", 64, "closed-loop load-generator clients")
	requests := flag.Int("requests", 2000, "requests to complete per policy")
	maxBatch := flag.Int("maxbatch", 32, "dynamic batcher flush size")
	waits := flag.String("waits", "500us,2ms,8ms", "comma-separated max-wait settings for the dynamic policies")
	queueCap := flag.Int("queue", 0, "admission queue bound (0 = 4×maxbatch)")
	timeScale := flag.Float64("timescale", 1, "wall occupancy per simulated second (negative disables)")
	input := flag.Int("input", 32, "model input extent (square)")
	channels := flag.Int("channels", 3, "model input channels")
	filters := flag.Int("filters", 32, "model output feature maps")
	kernel := flag.Int("kernel", 5, "model kernel extent")
	stride := flag.Int("stride", 1, "model stride")
	pad := flag.Int("pad", 2, "model padding")
	metrics := flag.String("metrics", "", "write per-policy registry snapshots to this JSON file")
	flag.Parse()

	eng, err := impls.ByName(*engine)
	if err != nil {
		log.Fatalf("serve: %v", err)
	}
	model := conv.Config{Input: *input, Channels: *channels, Filters: *filters,
		Kernel: *kernel, Stride: *stride, Pad: *pad}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	type policy struct {
		name     string
		maxBatch int
		maxWait  time.Duration
	}
	policies := []policy{{"batch=1", 1, time.Millisecond}}
	for _, w := range strings.Split(*waits, ",") {
		d, err := time.ParseDuration(strings.TrimSpace(w))
		if err != nil {
			log.Fatalf("serve: bad -waits entry %q: %v", w, err)
		}
		policies = append(policies, policy{"dynamic", *maxBatch, d})
	}

	spec := gpusim.TeslaK40c()
	fmt.Printf("Inference serving — dynamic batching over the simulated cluster\n")
	perImage := model.WithDefaults()
	perImage.Batch = 1
	fmt.Printf("model %v · engine %s · %d× %s · %d closed-loop clients · %d requests per policy\n\n",
		perImage, eng.Name(), *devices, spec.Name, *clients, *requests)
	fmt.Printf("%-9s %-9s %-11s %-10s %-11s %-10s %-10s %-10s %s\n",
		"policy", "max-wait", "mean-batch", "req/s", "sim img/s", "p50", "p99", "queue-p99", "rejected")

	snapshots := map[string]telemetry.MetricsSnapshot{}
	for _, p := range policies {
		reg := telemetry.NewRegistry()
		s, err := serve.New(multigpu.New(*devices, spec), serve.Options{
			Engine:    eng,
			Model:     model,
			MaxBatch:  p.maxBatch,
			MaxWait:   p.maxWait,
			QueueCap:  *queueCap,
			TimeScale: *timeScale,
			Registry:  reg,
		})
		if err != nil {
			log.Fatalf("serve: %v", err)
		}
		rep := serve.RunLoad(ctx, s, serve.LoadOptions{Clients: *clients, Requests: *requests})
		s.Close()
		wait := p.maxWait.String()
		if p.maxBatch == 1 {
			wait = "—"
		}
		fmt.Printf("%-9s %-9s %-11.1f %-10.0f %-11.0f %-10v %-10v %-10v %d\n",
			p.name, wait, rep.MeanBatch, rep.ThroughputRPS, rep.SimImagesPerSec,
			rep.P50.Round(time.Microsecond), rep.P99.Round(time.Microsecond),
			rep.QueueP99.Round(time.Microsecond), rep.Rejected)
		key := p.name
		if p.maxBatch > 1 {
			key = fmt.Sprintf("dynamic-%s", p.maxWait)
		}
		snapshots[key] = reg.Snapshot()
		if ctx.Err() != nil {
			break
		}
	}

	fmt.Printf("\nsim img/s = served images per simulated GPU-busy second (batch amortisation, Figure 3a);\n")
	fmt.Printf("req/s and percentiles are wall-clock under the closed loop (timescale %g).\n", *timeScale)

	if *metrics != "" {
		enc, err := json.MarshalIndent(snapshots, "", "  ")
		if err != nil {
			log.Fatalf("serve: %v", err)
		}
		if err := os.WriteFile(*metrics, append(enc, '\n'), 0o644); err != nil {
			log.Fatalf("serve: %v", err)
		}
		fmt.Printf("\nwrote per-policy metrics to %s\n", *metrics)
	}
}
