// Command serve runs the inference-serving layer over the simulated
// cluster and renders a throughput-vs-latency table across batching
// policies: the batch=1 baseline against dynamic batching at several
// max-wait settings. The per-image amortisation the paper measures in
// Figure 3a reappears here as a serving result — larger formed batches
// buy simulated throughput at a bounded queueing-latency cost.
//
// With -dash the process also serves the live observability plane:
// rolling-window latency/queue metrics, SLO burn-rate states and
// profile attributions at /debug/dash (text) and /debug/dash.json,
// plus the current policy's /metrics. Point cmd/obswatch at it, or
// curl it mid-run. -linger keeps the dashboard up after the table so
// the final minute of history stays inspectable.
//
// Usage:
//
//	serve [-devices 4] [-engine cuDNN] [-clients 64] [-requests 2000]
//	      [-maxbatch 32] [-waits 500us,2ms,8ms] [-timescale 1]
//	      [-input 32] [-filters 32] [-kernel 5] [-metrics out.json]
//	      [-dash :8080] [-linger] [-profiles dir]
//	      [-slo-p99 10ms] [-slo-target 0.99] [-slo-shedmax 0.05]
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"time"

	"gpucnn/internal/conv"
	"gpucnn/internal/gpusim"
	"gpucnn/internal/impls"
	"gpucnn/internal/multigpu"
	"gpucnn/internal/obs"
	"gpucnn/internal/par"
	"gpucnn/internal/serve"
	"gpucnn/internal/telemetry"
)

func main() {
	devices := flag.Int("devices", 4, "simulated GPUs in the cluster")
	engine := flag.String("engine", "cuDNN", "convolution engine (must support arbitrary batch sizes)")
	clients := flag.Int("clients", 64, "closed-loop load-generator clients")
	requests := flag.Int("requests", 2000, "requests to complete per policy")
	maxBatch := flag.Int("maxbatch", 32, "dynamic batcher flush size")
	waits := flag.String("waits", "500us,2ms,8ms", "comma-separated max-wait settings for the dynamic policies")
	queueCap := flag.Int("queue", 0, "admission queue bound (0 = 4×maxbatch)")
	timeScale := flag.Float64("timescale", 1, "wall occupancy per simulated second (negative disables)")
	input := flag.Int("input", 32, "model input extent (square)")
	channels := flag.Int("channels", 3, "model input channels")
	filters := flag.Int("filters", 32, "model output feature maps")
	kernel := flag.Int("kernel", 5, "model kernel extent")
	stride := flag.Int("stride", 1, "model stride")
	pad := flag.Int("pad", 2, "model padding")
	metrics := flag.String("metrics", "", "write per-policy registry snapshots to this JSON file")
	dashAddr := flag.String("dash", "", "serve the live dashboard (/debug/dash, /debug/dash.json, /metrics) on this address")
	linger := flag.Bool("linger", false, "with -dash: keep the dashboard up after the table (ctrl-C to exit)")
	profDir := flag.String("profiles", "", "with -dash: periodically write CPU/heap profiles to this directory")
	sloP99 := flag.Duration("slo-p99", 10*time.Millisecond, "SLO objective: e2e p99 latency threshold")
	sloTarget := flag.Float64("slo-target", 0.99, "SLO objective: fraction of requests that must land under -slo-p99")
	sloShed := flag.Float64("slo-shedmax", 0.05, "SLO objective: maximum tolerated shed (rejection) rate")
	flag.Parse()

	eng, err := impls.ByName(*engine)
	if err != nil {
		log.Fatalf("serve: %v", err)
	}
	model := conv.Config{Input: *input, Channels: *channels, Filters: *filters,
		Kernel: *kernel, Stride: *stride, Pad: *pad}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// One plane across every policy: the dashboard's rolling windows
	// span the whole run, so policy-to-policy shifts in p99 and shed
	// rate show up as live series rather than separate snapshots.
	plane := obs.NewPlane(obs.Options{})
	slo := serve.SLOConfig{
		E2EThreshold: sloP99.Seconds(),
		E2ETarget:    *sloTarget,
		ShedMax:      *sloShed,
	}

	// The Prometheus registry stays per-policy (the -metrics file keys
	// snapshots by policy), so the HTTP /metrics routes read whichever
	// registry the current policy is writing through.
	var liveReg atomic.Pointer[telemetry.Registry]
	if *dashAddr != "" {
		mux := http.NewServeMux()
		obs.Mount(mux, plane)
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if reg := liveReg.Load(); reg != nil {
				_ = reg.WritePrometheus(w)
			}
		})
		mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			if reg := liveReg.Load(); reg != nil {
				_ = reg.WriteJSON(w)
			}
		})
		srv := &http.Server{Addr: *dashAddr, Handler: mux}
		par.Go("serve.dash", func() {
			if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Fatalf("serve: dashboard: %v", err)
			}
		})
		fmt.Printf("dashboard: http://%s/debug/dash\n", *dashAddr)

		if *profDir != "" {
			prof := obs.NewProfiler(obs.ProfilerConfig{Plane: plane, Dir: *profDir})
			prof.Start()
			defer prof.Stop()
			plane.AttachProfiler(prof)
		}
	}

	type policy struct {
		name     string
		maxBatch int
		maxWait  time.Duration
	}
	policies := []policy{{"batch=1", 1, time.Millisecond}}
	for _, w := range strings.Split(*waits, ",") {
		d, err := time.ParseDuration(strings.TrimSpace(w))
		if err != nil {
			log.Fatalf("serve: bad -waits entry %q: %v", w, err)
		}
		policies = append(policies, policy{"dynamic", *maxBatch, d})
	}

	spec := gpusim.TeslaK40c()
	fmt.Printf("Inference serving — dynamic batching over the simulated cluster\n")
	perImage := model.WithDefaults()
	perImage.Batch = 1
	fmt.Printf("model %v · engine %s · %d× %s · %d closed-loop clients · %d requests per policy\n\n",
		perImage, eng.Name(), *devices, spec.Name, *clients, *requests)
	fmt.Printf("%-9s %-9s %-11s %-10s %-11s %-10s %-10s %-10s %-9s %s\n",
		"policy", "max-wait", "mean-batch", "req/s", "sim img/s", "p50", "p99", "queue-p99", "shed", "slo")

	snapshots := map[string]telemetry.MetricsSnapshot{}
	for _, p := range policies {
		reg := telemetry.NewRegistry()
		liveReg.Store(reg)
		s, err := serve.New(multigpu.New(*devices, spec), serve.Options{
			Engine:    eng,
			Model:     model,
			MaxBatch:  p.maxBatch,
			MaxWait:   p.maxWait,
			QueueCap:  *queueCap,
			TimeScale: *timeScale,
			Registry:  reg,
			Obs:       plane,
			SLO:       slo,
		})
		if err != nil {
			log.Fatalf("serve: %v", err)
		}
		rep := serve.RunLoad(ctx, s, serve.LoadOptions{Clients: *clients, Requests: *requests})
		stats := s.Stats()
		sloState := worstState(s.Monitor())
		s.Close()
		wait := p.maxWait.String()
		if p.maxBatch == 1 {
			wait = "—"
		}
		fmt.Printf("%-9s %-9s %-11.1f %-10.0f %-11.0f %-10v %-10v %-10v %-9s %s\n",
			p.name, wait, rep.MeanBatch, rep.ThroughputRPS, rep.SimImagesPerSec,
			rep.P50.Round(time.Microsecond), rep.P99.Round(time.Microsecond),
			rep.QueueP99.Round(time.Microsecond),
			shedColumn(stats), sloState)
		key := p.name
		if p.maxBatch > 1 {
			key = fmt.Sprintf("dynamic-%s", p.maxWait)
		}
		snapshots[key] = reg.Snapshot()
		if ctx.Err() != nil {
			break
		}
	}

	fmt.Printf("\nsim img/s = served images per simulated GPU-busy second (batch amortisation, Figure 3a);\n")
	fmt.Printf("req/s and percentiles are wall-clock under the closed loop (timescale %g);\n", *timeScale)
	fmt.Printf("shed = rejected/offered under the bounded admission queue; slo = worst burn-rate state at close.\n")

	if *metrics != "" {
		enc, err := json.MarshalIndent(snapshots, "", "  ")
		if err != nil {
			log.Fatalf("serve: %v", err)
		}
		if err := os.WriteFile(*metrics, append(enc, '\n'), 0o644); err != nil {
			log.Fatalf("serve: %v", err)
		}
		fmt.Printf("\nwrote per-policy metrics to %s\n", *metrics)
	}

	if *dashAddr != "" && *linger && ctx.Err() == nil {
		fmt.Printf("\ndashboard still live at http://%s/debug/dash — ctrl-C to exit\n", *dashAddr)
		<-ctx.Done()
	}
}

// shedColumn renders the shed rate over everything the policy was
// offered (admitted plus rejected).
func shedColumn(st serve.Stats) string {
	offered := st.Submitted + st.Rejected
	if offered == 0 {
		return "—"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(st.Rejected)/float64(offered))
}

// worstState reports the monitor's worst objective state at the end of
// a policy run.
func worstState(m *obs.Monitor) string {
	if m == nil {
		return "—"
	}
	worst := obs.OK
	for _, o := range m.Status() {
		if st := m.State(o.Name); st > worst {
			worst = st
		}
	}
	return worst.String()
}
