package main

import (
	"testing"
	"time"

	"gpucnn/internal/telemetry"
)

func TestTraceWindow(t *testing.T) {
	const end = 100 * time.Millisecond
	cases := []struct {
		name        string
		since, last time.Duration
		from, until time.Duration
	}{
		{"neither", 0, 0, 0, telemetry.MaxSimTime},
		{"since-only", 30 * time.Millisecond, 0, 30 * time.Millisecond, telemetry.MaxSimTime},
		{"last-only", 0, 25 * time.Millisecond, 75 * time.Millisecond, telemetry.MaxSimTime},
		{"last-exceeds-run", 0, time.Second, 0, telemetry.MaxSimTime},
		{"both", 30 * time.Millisecond, 25 * time.Millisecond, 30 * time.Millisecond, 55 * time.Millisecond},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			from, until := traceWindow(c.since, c.last, end)
			if from != c.from || until != c.until {
				t.Errorf("traceWindow(%v, %v, %v) = [%v, %v), want [%v, %v)",
					c.since, c.last, end, from, until, c.from, c.until)
			}
		})
	}
}
