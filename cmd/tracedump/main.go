// Command tracedump runs simulated training iterations of one of the
// paper's models and dumps the full telemetry of the run: a
// hierarchical Chrome trace (run → model pass → layer → engine phase →
// kernel/transfer, loadable in chrome://tracing or ui.perfetto.dev)
// and a metrics snapshot with per-layer latency histograms in
// Prometheus text format — the layer-attributed view of the paper's
// Figures 2 and 4.
//
// Usage:
//
//	tracedump [-model alexnet] [-impl cuDNN] [-b 128] [-iters 1]
//	          [-trace trace.json] [-metrics metrics.prom] [-json metrics.json]
//	          [-since 30ms] [-last 25ms] [-http :8080]
//
// -since and -last window the trace by simulated time: -since keeps
// everything from that point on, -last keeps the run's tail, and both
// together keep the slice [since, since+last). Spans overlapping the
// window are kept whole.
//
// With -http the process keeps running after the dump, serving
// /metrics (Prometheus), /metrics.json and /trace (always the full
// trace; the window applies to the file dump).
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"

	"gpucnn/internal/gpusim"
	"gpucnn/internal/impls"
	"gpucnn/internal/models"
	"gpucnn/internal/nn"
	"gpucnn/internal/telemetry"
)

func buildModel(name string, eng impls.Engine) (*models.Model, error) {
	switch strings.ToLower(name) {
	case "alexnet":
		return models.AlexNet(eng), nil
	case "vgg19", "vgg":
		return models.VGG19(eng), nil
	case "googlenet":
		return models.GoogLeNet(eng), nil
	case "overfeat":
		return models.OverFeat(eng), nil
	case "lenet5", "lenet":
		return models.LeNet5(eng), nil
	}
	return nil, fmt.Errorf("unknown model %q (have alexnet, vgg19, googlenet, overfeat, lenet5)", name)
}

func writeTo(path string, f func(io.Writer) error) error {
	if path == "" {
		return nil
	}
	if path == "-" {
		return f(os.Stdout)
	}
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f(file); err != nil {
		file.Close()
		return err
	}
	return file.Close()
}

// simulate runs the training iterations, converting the nn layer's
// panics (device OOM on configurations a 12 GB card cannot hold, the
// paper's "program crush" cases) into a plain error.
func simulate(ctx *nn.Context, model *models.Model, b, iters int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	for i := 0; i < iters; i++ {
		model.Net.SimulateIteration(ctx, model.InputShape(b))
	}
	return nil
}

func main() {
	modelName := flag.String("model", "alexnet", "model to run (alexnet, vgg19, googlenet, overfeat, lenet5)")
	implName := flag.String("impl", "cuDNN", "convolution engine")
	b := flag.Int("b", 128, "mini-batch size")
	iters := flag.Int("iters", 1, "training iterations to simulate")
	traceOut := flag.String("trace", "trace.json", "Chrome trace output ('-' for stdout, '' to skip)")
	since := flag.Duration("since", 0, "keep trace events from this simulated time on")
	last := flag.Duration("last", 0, "keep only the last span of simulated time (with -since: the window [since, since+last))")
	metricsOut := flag.String("metrics", "metrics.prom", "Prometheus metrics output ('-' for stdout, '' to skip)")
	jsonOut := flag.String("json", "", "JSON metrics output ('-' for stdout, '' to skip)")
	httpAddr := flag.String("http", "", "serve /metrics and /trace on this address after the run")
	flag.Parse()

	eng, err := impls.ByName(*implName)
	if err != nil {
		log.Fatal(err)
	}
	model, err := buildModel(*modelName, eng)
	if err != nil {
		log.Fatal(err)
	}

	dev := gpusim.New(gpusim.TeslaK40c())
	tracer := telemetry.NewTracer()
	reg := telemetry.NewRegistry()
	ctx := nn.NewContext(dev, true)

	run := tracer.Root("run").
		SetAttr("impl", eng.Name()).
		SetAttr("batch", fmt.Sprint(*b))
	modelSpan := run.Child("model:" + model.Net.Name)
	ctx.AttachTelemetry(modelSpan, reg)

	if err := simulate(ctx, model, *b, *iters); err != nil {
		log.Fatalf("%s/%s b=%d: %v", model.Net.Name, eng.Name(), *b, err)
	}
	model.Net.Release()
	modelSpan.End()
	run.End()

	telemetry.CollectDevice(reg, dev, telemetry.Labels{"device": "k40c"})

	from, until := traceWindow(*since, *last, dev.Elapsed())
	if err := writeTo(*traceOut, func(w io.Writer) error {
		return tracer.WriteChromeWindow(w, from, until)
	}); err != nil {
		log.Fatal(err)
	}
	if err := writeTo(*metricsOut, reg.WritePrometheus); err != nil {
		log.Fatal(err)
	}
	if err := writeTo(*jsonOut, reg.WriteJSON); err != nil {
		log.Fatal(err)
	}

	tot := run.Totals()
	fmt.Fprintf(os.Stderr,
		"%s/%s b=%d: %d iterations, %d kernels + %d transfers over %v simulated, span depth %d -> %s, %s\n",
		model.Net.Name, eng.Name(), *b, *iters, tot.Kernels, tot.Transfers,
		dev.Elapsed(), run.Depth(), *traceOut, *metricsOut)

	if *httpAddr != "" {
		fmt.Fprintf(os.Stderr, "serving /metrics, /metrics.json and /trace on %s\n", *httpAddr)
		log.Fatal(http.ListenAndServe(*httpAddr, telemetry.Handler(reg, tracer)))
	}
}
