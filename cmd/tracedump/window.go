package main

import (
	"time"

	"gpucnn/internal/telemetry"
)

// traceWindow maps the -since/-last flags onto the half-open
// simulated-time window handed to telemetry.WriteChromeWindow:
//
//	-since only  → [since, ∞)              everything from a point on
//	-last only   → [end−last, ∞)           the tail of the run
//	both         → [since, since+last)     a fixed slice
//	neither      → [0, ∞)                  the whole trace
//
// end is the run's final simulated timestamp (device clock at dump
// time); a -last longer than the run clamps to its start.
func traceWindow(since, last, end time.Duration) (from, until time.Duration) {
	switch {
	case since > 0 && last > 0:
		return since, since + last
	case since > 0:
		return since, telemetry.MaxSimTime
	case last > 0:
		from = end - last
		if from < 0 {
			from = 0
		}
		return from, telemetry.MaxSimTime
	}
	return 0, telemetry.MaxSimTime
}
