// Command report prints the reproduction scorecard: every tracked claim
// of the paper re-measured on the simulator and graded PASS/FAIL — the
// one-page answer to "did the reproduction hold?". The same claims are
// enforced as tests in internal/bench.
//
// The underlying measurement grid fans out over a bounded worker pool
// (-j); verdicts are identical to a serial run.
//
// Usage:
//
//	report [-j N] [-timeout d]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"gpucnn/internal/bench"
	"gpucnn/internal/telemetry"
)

func main() {
	jobs := flag.Int("j", 0, "parallel measurement workers (0 = one per CPU)")
	timeout := flag.Duration("timeout", 0, "per-measurement timeout (0 = none)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	ctx = telemetry.WithRegistry(ctx, telemetry.Default())
	opt := bench.Options{Workers: *jobs, Timeout: *timeout}

	claims := bench.ScorecardCtx(ctx, opt)
	fmt.Print(bench.RenderScorecard(claims))
	for _, c := range claims {
		if !c.Pass {
			os.Exit(1)
		}
	}
}
