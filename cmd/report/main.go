// Command report prints the reproduction scorecard: every tracked claim
// of the paper re-measured on the simulator and graded PASS/FAIL — the
// one-page answer to "did the reproduction hold?". The same claims are
// enforced as tests in internal/bench.
//
// Usage:
//
//	report
package main

import (
	"fmt"
	"os"

	"gpucnn/internal/bench"
)

func main() {
	claims := bench.Scorecard()
	fmt.Print(bench.RenderScorecard(claims))
	for _, c := range claims {
		if !c.Pass {
			os.Exit(1)
		}
	}
}
