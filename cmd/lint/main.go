// Command lint drives the repo's custom analyzer suite (spanend,
// arenaput, errcmp, ctxbg, rawgo, obsstop, lockheld, hotalloc,
// atomicmix, wallclock, bareignore — see internal/analysis) over Go
// packages.
//
// It speaks the go vet -vettool protocol (unitchecker), so the go
// command handles package loading, export data and facts — the same
// modular architecture as vet itself, which is what lets the driver
// work without network access or go/packages. For convenience it also
// accepts package patterns directly:
//
//	go run ./cmd/lint ./...
//
// re-execs itself as `go vet -vettool=<self> ./...`. The exit status
// is non-zero when any analyzer reports a diagnostic, which is what
// makes `make lint` a real gate.
//
// With -json the findings are emitted on stdout as a single JSON
// array of {file, line, col, analyzer, message} objects — a stable
// shape for CI annotations and editor integrations. go vet's own
// -json output goes to stderr interleaved with "# package" comments
// and exits zero even when diagnostics exist; this driver parses that
// stream, normalises it, and restores the non-zero-exit contract.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"gpucnn/internal/analysis"
)

func main() {
	if vetProtocol(os.Args[1:]) {
		unitchecker.Main(analysis.All()...) // does not return
	}

	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "lint:", err)
		os.Exit(1)
	}

	jsonMode := false
	var patterns []string
	for _, a := range os.Args[1:] {
		if a == "-json" || a == "--json" {
			jsonMode = true
			continue
		}
		patterns = append(patterns, a)
	}
	if jsonMode {
		os.Exit(runJSON(exe, patterns))
	}

	args := append([]string{"vet", "-vettool=" + exe}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintln(os.Stderr, "lint:", err)
		os.Exit(1)
	}
}

// Finding is one diagnostic in the machine-readable output.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// runJSON re-execs go vet in its -json mode, parses the diagnostic
// stream, and prints the normalised findings array. Returns the
// process exit code: 1 when findings exist, 0 when clean, and go
// vet's own code on hard failures (build errors and the like).
func runJSON(exe string, patterns []string) int {
	args := append([]string{"vet", "-vettool=" + exe, "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	var vetOut bytes.Buffer
	cmd.Stdout = os.Stderr // vet -json keeps stdout empty; stay transparent
	cmd.Stderr = &vetOut
	runErr := cmd.Run()

	findings, parseErr := parseVetJSON(vetOut.Bytes())
	if runErr != nil || parseErr != nil {
		// A non-zero vet exit in -json mode (or unparseable output)
		// means something harder than a finding: relay the raw stream.
		os.Stderr.Write(vetOut.Bytes())
		if ee, ok := runErr.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		return 1
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	if findings == nil {
		findings = []Finding{} // print [], not null
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(findings); err != nil {
		fmt.Fprintln(os.Stderr, "lint:", err)
		return 1
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// parseVetJSON decodes go vet -json's stderr stream: "# pkg" comment
// lines interleaved with pretty-printed objects of the shape
// {"pkgid": {"analyzer": [{"posn": "file:line:col", "message": ...}]}}.
func parseVetJSON(raw []byte) ([]Finding, error) {
	var filtered bytes.Buffer
	for _, line := range bytes.Split(raw, []byte("\n")) {
		if bytes.HasPrefix(bytes.TrimSpace(line), []byte("#")) {
			continue
		}
		filtered.Write(line)
		filtered.WriteByte('\n')
	}

	var out []Finding
	dec := json.NewDecoder(&filtered)
	for {
		var unit map[string]map[string][]struct {
			Posn    string `json:"posn"`
			Message string `json:"message"`
		}
		if err := dec.Decode(&unit); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		for _, byAnalyzer := range unit {
			for analyzer, diags := range byAnalyzer {
				for _, d := range diags {
					f := Finding{Analyzer: analyzer, Message: d.Message}
					f.File, f.Line, f.Col = splitPosn(d.Posn)
					out = append(out, f)
				}
			}
		}
	}
	return out, nil
}

// splitPosn breaks "file:line:col" apart from the right, so file paths
// containing colons survive.
func splitPosn(posn string) (file string, line, col int) {
	rest := posn
	if i := strings.LastIndexByte(rest, ':'); i >= 0 {
		col, _ = strconv.Atoi(rest[i+1:])
		rest = rest[:i]
	}
	if i := strings.LastIndexByte(rest, ':'); i >= 0 {
		line, _ = strconv.Atoi(rest[i+1:])
		rest = rest[:i]
	}
	return rest, line, col
}

// vetProtocol reports whether the arguments look like the build
// system's unitchecker invocation (-V=full, -flags, help, or a *.cfg
// unit description) rather than user-supplied package patterns.
func vetProtocol(args []string) bool {
	if len(args) == 0 {
		return true // let unitchecker print its usage
	}
	for _, a := range args {
		if strings.HasSuffix(a, ".cfg") || strings.HasPrefix(a, "-V") ||
			a == "-flags" || a == "help" {
			return true
		}
	}
	return false
}
