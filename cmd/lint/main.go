// Command lint drives the repo's custom analyzer suite (spanend,
// arenaput, errcmp, ctxbg, rawgo, obsstop — see internal/analysis) over Go
// packages.
//
// It speaks the go vet -vettool protocol (unitchecker), so the go
// command handles package loading, export data and facts — the same
// modular architecture as vet itself, which is what lets the driver
// work without network access or go/packages. For convenience it also
// accepts package patterns directly:
//
//	go run ./cmd/lint ./...
//
// re-execs itself as `go vet -vettool=<self> ./...`. The exit status
// is non-zero when any analyzer reports a diagnostic, which is what
// makes `make lint` a real gate.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"gpucnn/internal/analysis"
)

func main() {
	if vetProtocol(os.Args[1:]) {
		unitchecker.Main(analysis.All()...) // does not return
	}

	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "lint:", err)
		os.Exit(1)
	}
	args := append([]string{"vet", "-vettool=" + exe}, os.Args[1:]...)
	cmd := exec.Command("go", args...)
	cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintln(os.Stderr, "lint:", err)
		os.Exit(1)
	}
}

// vetProtocol reports whether the arguments look like the build
// system's unitchecker invocation (-V=full, -flags, help, or a *.cfg
// unit description) rather than user-supplied package patterns.
func vetProtocol(args []string) bool {
	if len(args) == 0 {
		return true // let unitchecker print its usage
	}
	for _, a := range args {
		if strings.HasSuffix(a, ".cfg") || strings.HasPrefix(a, "-V") ||
			a == "-flags" || a == "help" {
			return true
		}
	}
	return false
}
