package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestLintFailsOnBrokenPackage is the end-to-end smoke test: build the
// lint driver, point go vet's -vettool at it, and run it over a
// fixture module with deliberate violations. The run must exit
// non-zero and name the offending analyzers — proof the unitchecker
// wiring, not just the analyzer logic, works.
func TestLintFailsOnBrokenPackage(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go tool unavailable: %v", err)
	}

	bin := filepath.Join(t.TempDir(), "lint")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building lint driver: %v\n%s", err, out)
	}

	broken, err := filepath.Abs(filepath.Join("testdata", "broken"))
	if err != nil {
		t.Fatal(err)
	}
	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = broken
	vet.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool on the broken fixture exited 0; output:\n%s", out)
	}
	for _, want := range []string{
		"sentinel error ErrBad compared with ==; use errors.Is",
		"naked go statement in library code bypasses panic isolation; spawn through par.Go",
		"time.Sleep may block while mu is held",
		"append may grow (reallocate) its backing array in //hot:noalloc function Grow",
		"malformed //lint:ignore",
	} {
		if !strings.Contains(string(out), want) {
			t.Errorf("lint output missing %q; got:\n%s", want, out)
		}
	}
}

// TestLintJSON drives the -json mode end to end over the same broken
// fixture: the driver must still exit non-zero, but the findings must
// arrive on stdout as one JSON array with file/line/analyzer/message
// populated per finding.
func TestLintJSON(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go tool unavailable: %v", err)
	}

	bin := filepath.Join(t.TempDir(), "lint")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building lint driver: %v\n%s", err, out)
	}

	broken, err := filepath.Abs(filepath.Join("testdata", "broken"))
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "-json", "./...")
	cmd.Dir = broken
	cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	runErr := cmd.Run()
	if runErr == nil {
		t.Fatalf("lint -json on the broken fixture exited 0; stdout:\n%s", stdout.String())
	}
	if ee, ok := runErr.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Fatalf("lint -json: want exit code 1, got %v; stderr:\n%s", runErr, stderr.String())
	}

	var findings []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatalf("stdout is not a JSON findings array: %v\n%s", err, stdout.String())
	}
	if len(findings) < 5 {
		t.Fatalf("want at least 5 findings, got %d:\n%s", len(findings), stdout.String())
	}
	seen := map[string]bool{}
	for _, f := range findings {
		if f.File == "" || f.Line == 0 || f.Analyzer == "" || f.Message == "" {
			t.Errorf("finding with empty field: %+v", f)
		}
		if !strings.HasSuffix(f.File, ".go") {
			t.Errorf("finding file %q does not look like a Go file", f.File)
		}
		seen[f.Analyzer] = true
	}
	for _, analyzer := range []string{"errcmp", "rawgo", "lockheld", "hotalloc", "bareignore"} {
		if !seen[analyzer] {
			t.Errorf("no %s finding in JSON output; analyzers seen: %v", analyzer, seen)
		}
	}
}
