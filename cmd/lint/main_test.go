package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestLintFailsOnBrokenPackage is the end-to-end smoke test: build the
// lint driver, point go vet's -vettool at it, and run it over a
// fixture module with deliberate violations. The run must exit
// non-zero and name the offending analyzers — proof the unitchecker
// wiring, not just the analyzer logic, works.
func TestLintFailsOnBrokenPackage(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go tool unavailable: %v", err)
	}

	bin := filepath.Join(t.TempDir(), "lint")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building lint driver: %v\n%s", err, out)
	}

	broken, err := filepath.Abs(filepath.Join("testdata", "broken"))
	if err != nil {
		t.Fatal(err)
	}
	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = broken
	vet.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool on the broken fixture exited 0; output:\n%s", out)
	}
	for _, want := range []string{
		"sentinel error ErrBad compared with ==; use errors.Is",
		"naked go statement in library code bypasses panic isolation; spawn through par.Go",
	} {
		if !strings.Contains(string(out), want) {
			t.Errorf("lint output missing %q; got:\n%s", want, out)
		}
	}
}
