module broken.example

go 1.22
