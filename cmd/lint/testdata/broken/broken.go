// Package broken deliberately violates the lint suite; the cmd/lint
// smoke test asserts the driver exits non-zero on it.
package broken

import "errors"

var ErrBad = errors.New("bad")

// IsBad compares a sentinel with == (errcmp violation).
func IsBad(err error) bool {
	return err == ErrBad
}

// Spawn launches a naked goroutine in library code (rawgo violation).
func Spawn(f func()) {
	go f()
}
