// Package broken deliberately violates the lint suite; the cmd/lint
// smoke test asserts the driver exits non-zero on it.
package broken

import (
	"errors"
	"sync"
	"time"
)

var ErrBad = errors.New("bad")

// IsBad compares a sentinel with == (errcmp violation).
func IsBad(err error) bool {
	return err == ErrBad
}

// Spawn launches a naked goroutine in library code (rawgo violation).
func Spawn(f func()) {
	go f()
}

var mu sync.Mutex

// Stall sleeps inside a critical section (lockheld violation).
func Stall() {
	mu.Lock()
	defer mu.Unlock()
	time.Sleep(time.Millisecond)
}

// Grow appends in a hot function (hotalloc violation).
//
//hot:noalloc
func Grow(xs []int) []int {
	return append(xs, 1)
}

// Suppressed has a bare directive (bareignore violation) that also
// fails to suppress the rawgo finding beneath it.
func Suppressed(f func()) {
	//lint:ignore rawgo
	go f()
}
