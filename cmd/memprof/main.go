// Command memprof reproduces the paper's Figure 5: peak GPU memory
// usage of the seven implementations across the same five parameter
// sweeps as Figure 3 (the simulated analogue of watching nvidia-smi).
//
// Usage:
//
//	memprof [-sweep batch|input|filter|kernel|stride|all] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"

	"gpucnn/internal/bench"
	"gpucnn/internal/workload"
)

func main() {
	sweep := flag.String("sweep", "all", "parameter to sweep: batch, input, filter, kernel, stride, or all")
	csv := flag.Bool("csv", false, "emit CSV instead of a table")
	device := flag.String("device", "k40c", "simulated device: k40c or titanx")
	flag.Parse()

	spec, err := bench.SpecByName(*device)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	names := workload.SweepNames()
	if *sweep != "all" {
		if _, ok := workload.Sweeps()[*sweep]; !ok {
			fmt.Fprintf(os.Stderr, "unknown sweep %q (have %v)\n", *sweep, names)
			os.Exit(2)
		}
		names = []string{*sweep}
	}
	for _, name := range names {
		rows := bench.Figure3On(name, spec)
		if *csv {
			fmt.Print(bench.CSVSweep(name, rows, true))
		} else {
			fmt.Print(bench.RenderSweepMemory(name, rows))
		}
		fmt.Println()
	}
}
