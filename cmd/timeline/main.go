// Command timeline runs one training iteration of a chosen
// implementation and configuration on the simulated K40c and writes the
// kernel/transfer timeline as Chrome trace-event JSON, loadable in
// chrome://tracing or https://ui.perfetto.dev — a visual rendering of
// the kernel sequences behind the paper's Figure 4.
//
// The timeline now comes from the hierarchical tracer in
// internal/telemetry: kernels and transfers nest under the engine's
// phase spans (h2d → forward → backward_data → backward_filter) inside
// one iteration span, with flow arrows linking each host→device copy to
// the first kernel that consumes it. Pass -flat for the legacy
// two-track flat trace from gpusim.EnableTrace.
//
// Usage:
//
//	timeline [-impl fbfft] [-b 64] [-i 128] [-c 3] [-f 64] [-k 11] [-s 1] [-o trace.json] [-flat]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"gpucnn/internal/conv"
	"gpucnn/internal/gpusim"
	"gpucnn/internal/impls"
	"gpucnn/internal/telemetry"
)

func main() {
	implName := flag.String("impl", "fbfft", "implementation to trace")
	b := flag.Int("b", 64, "mini-batch size")
	i := flag.Int("i", 128, "input extent")
	c := flag.Int("c", 3, "input channels")
	f := flag.Int("f", 64, "filter count")
	k := flag.Int("k", 11, "kernel extent")
	s := flag.Int("s", 1, "stride")
	out := flag.String("o", "trace.json", "output file ('-' for stdout)")
	flat := flag.Bool("flat", false, "emit the legacy flat two-track trace instead of nested spans")
	flag.Parse()

	e, err := impls.ByName(*implName)
	if err != nil {
		log.Fatal(err)
	}
	cfg := conv.Config{Batch: *b, Input: *i, Channels: *c, Filters: *f, Kernel: *k, Stride: *s}
	dev := gpusim.New(gpusim.TeslaK40c())

	var flatTrace *gpusim.Trace
	tracer := telemetry.NewTracer()
	var root *telemetry.Span
	if *flat {
		flatTrace = dev.EnableTrace()
	} else {
		tracer.SetSimClock(dev.Elapsed)
		root = tracer.Root("iteration").
			SetAttr("impl", e.Name()).
			SetAttr("cfg", fmt.Sprint(cfg))
		rec := telemetry.NewRecorder()
		rec.Attach(root)
		dev.SetSink(rec)
	}

	plan, err := e.Plan(dev, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer plan.Release()
	if err := plan.Iteration(); err != nil {
		log.Fatal(err)
	}
	root.End()

	w := os.Stdout
	if *out != "-" {
		file, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer file.Close()
		w = file
	}
	events := 0
	if *flat {
		if err := flatTrace.WriteChromeObject(w); err != nil {
			log.Fatal(err)
		}
		events = flatTrace.Len()
	} else {
		if err := tracer.WriteChrome(w); err != nil {
			log.Fatal(err)
		}
		events = tracer.EventCount()
	}
	fmt.Fprintf(os.Stderr, "%s on %v: %d events over %v simulated -> %s\n",
		e.Name(), cfg, events, dev.Elapsed(), *out)
}
