// Command timeline runs one training iteration of a chosen
// implementation and configuration on the simulated K40c and writes the
// kernel/transfer timeline as Chrome trace-event JSON, loadable in
// chrome://tracing or https://ui.perfetto.dev — a visual rendering of
// the kernel sequences behind the paper's Figure 4.
//
// Usage:
//
//	timeline [-impl fbfft] [-b 64] [-i 128] [-c 3] [-f 64] [-k 11] [-s 1] [-o trace.json]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"gpucnn/internal/conv"
	"gpucnn/internal/gpusim"
	"gpucnn/internal/impls"
)

func main() {
	implName := flag.String("impl", "fbfft", "implementation to trace")
	b := flag.Int("b", 64, "mini-batch size")
	i := flag.Int("i", 128, "input extent")
	c := flag.Int("c", 3, "input channels")
	f := flag.Int("f", 64, "filter count")
	k := flag.Int("k", 11, "kernel extent")
	s := flag.Int("s", 1, "stride")
	out := flag.String("o", "trace.json", "output file ('-' for stdout)")
	flag.Parse()

	e, err := impls.ByName(*implName)
	if err != nil {
		log.Fatal(err)
	}
	cfg := conv.Config{Batch: *b, Input: *i, Channels: *c, Filters: *f, Kernel: *k, Stride: *s}
	dev := gpusim.New(gpusim.TeslaK40c())
	trace := dev.EnableTrace()
	plan, err := e.Plan(dev, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer plan.Release()
	if err := plan.Iteration(); err != nil {
		log.Fatal(err)
	}

	w := os.Stdout
	if *out != "-" {
		file, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer file.Close()
		w = file
	}
	if err := trace.WriteChrome(w); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "%s on %v: %d events over %v simulated -> %s\n",
		e.Name(), cfg, trace.Len(), dev.Elapsed(), *out)
}
