// Command convbench reproduces the paper's Figure 3: runtime of a
// single convolutional layer (forward + backward, averaged over 10
// iterations) for all seven implementations, sweeping one parameter of
// the 5-tuple (b, i, f, k, s) around the base configuration
// (64, 128, 64, 11, 1).
//
// Cells fan out over a bounded worker pool (-j); results are placed by
// grid position, so the tables are byte-identical at any parallelism.
//
// Usage:
//
//	convbench [-sweep batch|input|filter|kernel|stride|all] [-csv] [-j N] [-timeout d]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"gpucnn/internal/bench"
	"gpucnn/internal/telemetry"
	"gpucnn/internal/workload"
)

func main() {
	sweep := flag.String("sweep", "all", "parameter to sweep: batch, input, filter, kernel, stride, or all")
	csv := flag.Bool("csv", false, "emit CSV instead of a table")
	device := flag.String("device", "k40c", "simulated device: k40c or titanx")
	jobs := flag.Int("j", 0, "parallel measurement workers (0 = one per CPU)")
	timeout := flag.Duration("timeout", 0, "per-measurement timeout (0 = none)")
	flag.Parse()

	spec, err := bench.SpecByName(*device)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	ctx = telemetry.WithRegistry(ctx, telemetry.Default())
	opt := bench.Options{Workers: *jobs, Timeout: *timeout}

	names := workload.SweepNames()
	if *sweep != "all" {
		if _, ok := workload.Sweeps()[*sweep]; !ok {
			fmt.Fprintf(os.Stderr, "unknown sweep %q (have %v)\n", *sweep, names)
			os.Exit(2)
		}
		names = []string{*sweep}
	}
	for _, name := range names {
		rows := bench.Figure3Ctx(ctx, name, spec, opt)
		if *csv {
			fmt.Print(bench.CSVSweep(name, rows, false))
		} else {
			fmt.Print(bench.RenderSweepTimes(name, rows))
		}
		fmt.Println()
	}
}
