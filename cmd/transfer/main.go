// Command transfer reproduces the paper's Figure 7: the share of each
// implementation's runtime spent in visible CPU↔GPU data transfers,
// over the five Table I configurations. Implementations that prefetch
// through pinned memory (Caffe, cuDNN, fbfft) hide their transfers;
// Theano-CorrMM's pageable staging spikes past 60% on Conv2.
//
// Usage:
//
//	transfer [-j N] [-timeout d]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"gpucnn/internal/bench"
	"gpucnn/internal/telemetry"
)

func main() {
	jobs := flag.Int("j", 0, "parallel measurement workers (0 = one per CPU)")
	timeout := flag.Duration("timeout", 0, "per-measurement timeout (0 = none)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	ctx = telemetry.WithRegistry(ctx, telemetry.Default())
	opt := bench.Options{Workers: *jobs, Timeout: *timeout}

	fmt.Println("Figure 7 — data transfer share of runtime (simulated PCIe)")
	fmt.Println()
	fmt.Print(bench.RenderFigure7(bench.Figure7Ctx(ctx, opt)))
}
