// Command transfer reproduces the paper's Figure 7: the share of each
// implementation's runtime spent in visible CPU↔GPU data transfers,
// over the five Table I configurations. Implementations that prefetch
// through pinned memory (Caffe, cuDNN, fbfft) hide their transfers;
// Theano-CorrMM's pageable staging spikes past 60% on Conv2.
//
// Usage:
//
//	transfer
package main

import (
	"fmt"

	"gpucnn/internal/bench"
)

func main() {
	fmt.Println("Figure 7 — data transfer share of runtime (simulated PCIe)")
	fmt.Println()
	fmt.Print(bench.RenderFigure7(bench.Figure7()))
}
