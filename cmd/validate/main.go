// Command validate cross-checks the numerical correctness of every
// implementation on a configuration: all engines compute the same
// forward, backward-data and backward-filter results on real data, and
// the maximum relative deviation from the direct-convolution reference
// is reported. This is the ground truth under the performance study —
// the comparison is only meaningful because all seven implementations
// compute the same function.
//
// Usage:
//
//	validate [-b 32] [-i 24] [-c 3] [-f 16] [-k 5] [-s 1] [-pad 0]
package main

import (
	"flag"
	"fmt"
	"os"

	"gpucnn/internal/conv"
	"gpucnn/internal/gpusim"
	"gpucnn/internal/impls"
	"gpucnn/internal/tensor"
	"gpucnn/internal/workload"
)

func main() {
	b := flag.Int("b", 32, "mini-batch size")
	i := flag.Int("i", 24, "input extent")
	c := flag.Int("c", 3, "input channels")
	f := flag.Int("f", 16, "filter count")
	k := flag.Int("k", 5, "kernel extent")
	s := flag.Int("s", 1, "stride")
	pad := flag.Int("pad", 0, "padding")
	flag.Parse()

	cfg := conv.Config{Batch: *b, Input: *i, Channels: *c, Filters: *f, Kernel: *k, Stride: *s, Pad: *pad}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "invalid configuration:", err)
		os.Exit(2)
	}

	x, w := workload.SyntheticTensors(cfg, 1)
	dy := tensor.New(cfg.OutputShape()...)
	dy.FillUniform(tensor.NewRNG(2), -1, 1)

	refY := tensor.New(cfg.OutputShape()...)
	conv.DirectForward(cfg, x, w, refY)
	refDx := tensor.New(cfg.InputShape()...)
	conv.DirectBackwardData(cfg, dy, w, refDx)
	refDw := tensor.New(cfg.FilterShape()...)
	conv.DirectBackwardFilter(cfg, x, dy, refDw)

	fmt.Printf("validating %v (channels %d, pad %d) against direct convolution\n\n", cfg, cfg.Channels, cfg.Pad)
	fmt.Printf("%-16s %14s %14s %14s\n", "Implementation", "fwd rel.err", "bwd-data", "bwd-filter")
	failures := 0
	for _, e := range append(impls.All(), impls.Extensions()...) {
		if err := e.Supports(cfg); err != nil {
			fmt.Printf("%-16s %44s\n", e.Name(), "shape unsupported")
			continue
		}
		dev := gpusim.New(gpusim.TeslaK40c())
		plan, err := e.Plan(dev, cfg)
		if err != nil {
			fmt.Printf("%-16s %44s\n", e.Name(), err)
			continue
		}
		y := tensor.New(cfg.OutputShape()...)
		dx := tensor.New(cfg.InputShape()...)
		dw := tensor.New(cfg.FilterShape()...)
		if err := plan.Forward(x, w, y); err != nil {
			fmt.Printf("%-16s forward failed: %v\n", e.Name(), err)
			plan.Release()
			continue
		}
		plan.BackwardData(dy, w, dx)
		plan.BackwardFilter(x, dy, dw)
		plan.Release()
		ef, ed, ew := tensor.RelDiff(refY, y), tensor.RelDiff(refDx, dx), tensor.RelDiff(refDw, dw)
		marker := ""
		if ef > 1e-3 || ed > 1e-3 || ew > 1e-3 {
			marker = "  <-- FAIL"
			failures++
		}
		fmt.Printf("%-16s %14.2e %14.2e %14.2e%s\n", e.Name(), ef, ed, ew, marker)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "\n%d implementation(s) deviate beyond 1e-3\n", failures)
		os.Exit(1)
	}
	fmt.Println("\nall implementations agree with the direct reference")
}
