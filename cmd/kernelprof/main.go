// Command kernelprof reproduces the paper's Figure 4: the hotspot
// kernels inside each convolution implementation at the representative
// configuration (64, 128, 64, 11, 1), with each kernel's share of the
// layer's total runtime.
//
// Usage:
//
//	kernelprof
package main

import (
	"fmt"

	"gpucnn/internal/bench"
	"gpucnn/internal/workload"
)

func main() {
	fmt.Printf("Figure 4 — hotspot kernels at %v (simulated K40c)\n\n", workload.Base())
	fmt.Print(bench.RenderFigure4(bench.Figure4()))
}
