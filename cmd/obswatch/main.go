// Command obswatch is a terminal dashboard client: it polls a live
// /debug/dash.json endpoint (cmd/serve -dash, or any process that
// mounted obs on its telemetry mux) and re-renders the frame in
// place — rolling-window rates and quantiles, SLO burn states, recent
// transitions and the latest profile attributions, refreshed at the
// poll interval without a browser.
//
// Usage:
//
//	obswatch [-url http://localhost:8080] [-interval 1s] [-n 0] [-once]
//
// -url accepts either the server base or the full /debug/dash.json
// path. -n bounds the number of frames (0 = until interrupted); -once
// prints a single frame without clearing the screen.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"time"

	"gpucnn/internal/obs"
)

// dashURL normalises the -url flag to the JSON endpoint.
func dashURL(base string) string {
	if strings.HasSuffix(base, "/debug/dash.json") {
		return base
	}
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return strings.TrimRight(base, "/") + "/debug/dash.json"
}

// fetch pulls and decodes one dashboard frame. SectionKeys travels as
// json:"-" (the server orders sections by registration), so the client
// rebuilds a deterministic order by name.
func fetch(ctx context.Context, url string) (obs.DashSnapshot, error) {
	var snap obs.DashSnapshot
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return snap, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("%s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return snap, err
	}
	for name := range snap.Sections {
		snap.SectionKeys = append(snap.SectionKeys, name)
	}
	sort.Strings(snap.SectionKeys)
	return snap, nil
}

func main() {
	url := flag.String("url", "http://localhost:8080", "dashboard server base URL (or the full /debug/dash.json path)")
	interval := flag.Duration("interval", time.Second, "poll interval")
	frames := flag.Int("n", 0, "frames to render before exiting (0 = until interrupted)")
	once := flag.Bool("once", false, "print one frame and exit (no screen clearing)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	target := dashURL(*url)

	if *once {
		*frames = 1
	}
	for i := 0; *frames == 0 || i < *frames; i++ {
		if i > 0 {
			select {
			case <-time.After(*interval):
			case <-ctx.Done():
				return
			}
		}
		snap, err := fetch(ctx, target)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			log.Fatalf("obswatch: %v", err)
		}
		if !*once {
			// Home the cursor and clear below instead of a full wipe, so
			// successive frames repaint without flicker.
			fmt.Print("\x1b[H\x1b[2J")
		}
		snap.RenderText(os.Stdout)
	}
}
