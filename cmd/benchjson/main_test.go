package main

import (
	"reflect"
	"testing"
)

func TestParseLineMetricPairs(t *testing.T) {
	cases := []struct {
		name string
		line string
		want map[string]float64
	}{
		{
			name: "plain pairs",
			line: "BenchmarkGEMM-8  100  123.4 ns/op  45.6 GFLOPS  12 B/op  3 allocs/op",
			want: map[string]float64{"GFLOPS": 45.6, "B/op": 12, "allocs/op": 3},
		},
		{
			// A stray non-numeric token must advance by one to
			// resynchronise, not swallow the next pair's value.
			name: "misaligned tail resyncs",
			line: "BenchmarkGEMM-8  100  123.4 ns/op  45.6 GFLOPS  oops  12 B/op  3 allocs/op",
			want: map[string]float64{"GFLOPS": 45.6, "B/op": 12, "allocs/op": 3},
		},
		{
			// Two metrics sharing a unit must not clobber each other:
			// later ones get position-qualified keys.
			name: "unit collision position-qualified",
			line: "BenchmarkStages-8  10  50 ns/op  1.5 ns  2.5 ns  4 ns",
			want: map[string]float64{"ns": 1.5, "ns#2": 2.5, "ns#3": 4},
		},
		{
			name: "no extra metrics",
			line: "BenchmarkSmall-4  1000  99 ns/op",
			want: map[string]float64{},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			name, r, ok := parseLine(c.line)
			if !ok {
				t.Fatalf("line not parsed: %q", c.line)
			}
			if name == "" || r.nsPerOp <= 0 {
				t.Fatalf("bad parse: name=%q r=%+v", name, r)
			}
			if !reflect.DeepEqual(r.metrics, c.want) {
				t.Errorf("metrics = %v, want %v", r.metrics, c.want)
			}
		})
	}
}

func TestParseLineRejectsNonResults(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"BenchmarkX-8 notanumber 5 ns/op",
		"BenchmarkX-8 100 5 s/op", // field 3 must be ns/op
		"ok  \tgpucnn/internal/gemm\t1.2s",
	} {
		if _, _, ok := parseLine(line); ok {
			t.Errorf("parsed non-result line %q", line)
		}
	}
}

func TestParseLineKeepsRawName(t *testing.T) {
	name, _, ok := parseLine("BenchmarkGEMM/size-256  100  5 ns/op")
	if !ok || name != "BenchmarkGEMM/size-256" {
		t.Fatalf("parseLine must not strip names itself; got %q", name)
	}
}

func normalize(names []string, gomaxprocs int) []string {
	byName := map[string][]result{}
	for _, n := range names {
		byName[n] = append(byName[n], result{nsPerOp: 1})
	}
	var order []string
	seen := map[string]bool{}
	for _, n := range names {
		if !seen[n] {
			seen[n] = true
			order = append(order, n)
		}
	}
	out, _ := normalizeNames(order, byName, gomaxprocs)
	return out
}

func TestNormalizeNames(t *testing.T) {
	cases := []struct {
		name       string
		in         []string
		gomaxprocs int
		want       []string
	}{
		{
			name:       "suffix matches gomaxprocs",
			in:         []string{"BenchmarkA-8", "BenchmarkB-8"},
			gomaxprocs: 8,
			want:       []string{"BenchmarkA", "BenchmarkB"},
		},
		{
			// GOMAXPROCS=1 emits no suffix: a genuine sub-benchmark
			// ending in -<int> must not be truncated and merged.
			name:       "gomaxprocs=1 sub-benchmark preserved",
			in:         []string{"BenchmarkGEMM/size-128", "BenchmarkGEMM/size-256"},
			gomaxprocs: 1,
			want:       []string{"BenchmarkGEMM/size-128", "BenchmarkGEMM/size-256"},
		},
		{
			// Cross-machine snapshot: every distinct benchmark carries
			// the same -16 even though this process has gomaxprocs=1.
			name:       "shared suffix across distinct names stripped",
			in:         []string{"BenchmarkA-16", "BenchmarkB-16"},
			gomaxprocs: 1,
			want:       []string{"BenchmarkA", "BenchmarkB"},
		},
		{
			// A single name trivially "shares" its suffix with itself;
			// that is not evidence of a GOMAXPROCS suffix.
			name:       "lone sub-benchmark not truncated",
			in:         []string{"BenchmarkGEMM/size-256"},
			gomaxprocs: 1,
			want:       []string{"BenchmarkGEMM/size-256"},
		},
		{
			name:       "mixed suffixed and bare kept apart",
			in:         []string{"BenchmarkA-256", "BenchmarkB"},
			gomaxprocs: 1,
			want:       []string{"BenchmarkA-256", "BenchmarkB"},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := normalize(c.in, c.gomaxprocs); !reflect.DeepEqual(got, c.want) {
				t.Errorf("normalize(%v, %d) = %v, want %v", c.in, c.gomaxprocs, got, c.want)
			}
		})
	}
}

// TestNormalizeMergesCountRepeats: -count=N repeats of one benchmark
// (same raw name) stay merged after stripping, keeping the median
// semantics.
func TestNormalizeMergesCountRepeats(t *testing.T) {
	byName := map[string][]result{
		"BenchmarkA-8": {{nsPerOp: 1}, {nsPerOp: 2}, {nsPerOp: 3}},
	}
	order, merged := normalizeNames([]string{"BenchmarkA-8"}, byName, 8)
	if len(order) != 1 || order[0] != "BenchmarkA" {
		t.Fatalf("order = %v", order)
	}
	if len(merged["BenchmarkA"]) != 3 {
		t.Fatalf("runs = %d, want 3", len(merged["BenchmarkA"]))
	}
}
