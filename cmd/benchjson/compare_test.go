package main

import (
	"strings"
	"testing"
)

func snapOf(pairs ...any) Snapshot {
	var s Snapshot
	for i := 0; i+1 < len(pairs); i += 2 {
		s.Benchmarks = append(s.Benchmarks, Summary{
			Name:    pairs[i].(string),
			NsPerOp: pairs[i+1].(float64),
		})
	}
	return s
}

func TestCompareSnapshotsRatiosAndFlags(t *testing.T) {
	oldSnap := snapOf("BenchmarkA", 1000.0, "BenchmarkB", 2000.0, "BenchmarkGone", 10.0)
	newSnap := snapOf("BenchmarkA", 500.0, "BenchmarkB", 2500.0, "BenchmarkNew", 42.0)
	rows, regressed := compareSnapshots(oldSnap, newSnap, 1.15)
	if !regressed {
		t.Fatal("1.25x slowdown on BenchmarkB not flagged")
	}
	byName := map[string]compareRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if r := byName["BenchmarkA"]; r.Status != "faster" || r.Ratio != 0.5 {
		t.Errorf("BenchmarkA row = %+v, want faster at 0.5", r)
	}
	if r := byName["BenchmarkB"]; r.Status != "REGRESSION" || r.Ratio != 1.25 {
		t.Errorf("BenchmarkB row = %+v, want REGRESSION at 1.25", r)
	}
	if r := byName["BenchmarkNew"]; r.Status != "new" {
		t.Errorf("BenchmarkNew row = %+v, want status new", r)
	}
	if r := byName["BenchmarkGone"]; r.Status != "removed" {
		t.Errorf("BenchmarkGone row = %+v, want status removed", r)
	}
}

func TestCompareSnapshotsWithinThresholdPasses(t *testing.T) {
	oldSnap := snapOf("BenchmarkA", 1000.0)
	newSnap := snapOf("BenchmarkA", 1100.0) // 1.10 < 1.15
	rows, regressed := compareSnapshots(oldSnap, newSnap, 1.15)
	if regressed {
		t.Fatal("within-threshold slowdown flagged as regression")
	}
	if rows[0].Status != "ok" {
		t.Errorf("row = %+v, want status ok", rows[0])
	}
	// Missing-on-one-side benchmarks must never flag the run.
	rows, regressed = compareSnapshots(snapOf("BenchmarkOnlyOld", 5.0), snapOf("BenchmarkOnlyNew", 7.0), 1.15)
	if regressed {
		t.Fatalf("new/removed rows flagged a regression: %+v", rows)
	}
}

func TestRenderCompareTable(t *testing.T) {
	rows, _ := compareSnapshots(snapOf("BenchmarkA", 1000.0), snapOf("BenchmarkA", 500.0), 1.15)
	var sb strings.Builder
	renderCompare(&sb, rows, 1.15)
	out := sb.String()
	for _, want := range []string{"BenchmarkA", "0.500", "faster", "ratio = new/old"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}
