// Command benchjson converts `go test -bench` output into a compact
// JSON snapshot. Repeated runs of the same benchmark (from -count=N)
// are collapsed to their median, so the snapshot is robust to scheduler
// noise without needing benchstat.
//
// Usage:
//
//	go test ./internal/gemm -bench . -count=5 | go run ./cmd/benchjson -out BENCH_kernels.json
//	go run ./cmd/benchjson -in bench.txt -out BENCH_kernels.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// result is one benchmark line's parsed fields.
type result struct {
	iters   int64
	nsPerOp float64
	metrics map[string]float64 // extra "value unit" pairs (GFLOPS, B/op, ...)
}

// Summary is the per-benchmark aggregate written to JSON.
type Summary struct {
	Name      string             `json:"name"`
	Runs      int                `json:"runs"`
	NsPerOp   float64            `json:"ns_per_op_median"`
	NsMin     float64            `json:"ns_per_op_min"`
	NsMax     float64            `json:"ns_per_op_max"`
	Metrics   map[string]float64 `json:"metrics,omitempty"` // medians
	AllocsPct *float64           `json:"allocs_per_op,omitempty"`
}

// Snapshot is the output document.
type Snapshot struct {
	Note       string    `json:"note"`
	GoOS       string    `json:"goos,omitempty"`
	GoArch     string    `json:"goarch,omitempty"`
	CPU        string    `json:"cpu,omitempty"`
	Benchmarks []Summary `json:"benchmarks"`
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// parseLine parses one benchmark result line, returning the raw
// benchmark name (GOMAXPROCS suffix intact — see normalizeNames).
func parseLine(line string) (string, result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", result{}, false
	}
	ns, err := strconv.ParseFloat(fields[2], 64)
	if err != nil || fields[3] != "ns/op" {
		return "", result{}, false
	}
	r := result{iters: iters, nsPerOp: ns, metrics: map[string]float64{}}
	// The tail is "value unit" pairs. A field that doesn't parse as a
	// number advances by ONE to resynchronise — advancing by two would
	// misalign every subsequent pair.
	for i := 4; i+1 < len(fields); {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			i++
			continue
		}
		// Metrics are keyed by unit; a second metric with the same unit
		// (two custom ns columns, say) must not silently clobber the
		// first, so later ones get a position-qualified key.
		key := fields[i+1]
		for k := 2; ; k++ {
			if _, taken := r.metrics[key]; !taken {
				break
			}
			key = fmt.Sprintf("%s#%d", fields[i+1], k)
		}
		r.metrics[key] = v
		i += 2
	}
	return fields[0], r, true
}

// trailingInt splits a trailing "-<int>" off the name, returning the
// base and the integer (-1 when there is none).
func trailingInt(name string) (string, int) {
	idx := strings.LastIndex(name, "-")
	if idx <= 0 {
		return name, -1
	}
	n, err := strconv.Atoi(name[idx+1:])
	if err != nil || n < 0 {
		return name, -1
	}
	return name[:idx], n
}

// normalizeNames strips the trailing -N GOMAXPROCS suffix — but only
// when it provably is one. `go test` under GOMAXPROCS=1 emits no
// suffix at all, so a name genuinely ending in -<int> (a sub-benchmark
// like BenchmarkGEMM/size-256) must not be truncated and merged with
// its siblings. The suffix is stripped when it equals this process's
// GOMAXPROCS, or when every line carries the same suffix across at
// least two distinct benchmark names (the signature of a shared
// GOMAXPROCS, possibly from another machine).
func normalizeNames(order []string, byName map[string][]result, gomaxprocs int) ([]string, map[string][]result) {
	shared, allShare := -1, len(order) > 1
	for _, name := range order {
		_, n := trailingInt(name)
		if n < 0 || (shared >= 0 && n != shared) {
			allShare = false
			break
		}
		shared = n
	}
	newOrder := make([]string, 0, len(order))
	newByName := make(map[string][]result, len(byName))
	for _, name := range order {
		base, n := trailingInt(name)
		stripped := name
		if n >= 0 && (n == gomaxprocs || allShare) {
			stripped = base
		}
		if _, seen := newByName[stripped]; !seen {
			newOrder = append(newOrder, stripped)
		}
		newByName[stripped] = append(newByName[stripped], byName[name]...)
	}
	return newOrder, newByName
}

func main() {
	in := flag.String("in", "", "bench output file (default stdin)")
	out := flag.String("out", "", "output JSON file (default stdout)")
	note := flag.String("note", "kernel microbenchmark snapshot (medians over -count runs)", "note field for the snapshot")
	flag.Parse()

	var src io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatalf("benchjson: %v", err)
		}
		defer f.Close()
		src = f
	}

	snap := Snapshot{Note: *note}
	byName := map[string][]result{}
	var order []string
	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			snap.GoOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			snap.GoArch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			snap.CPU = strings.TrimPrefix(line, "cpu: ")
		}
		if name, r, ok := parseLine(line); ok {
			if _, seen := byName[name]; !seen {
				order = append(order, name)
			}
			byName[name] = append(byName[name], r)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	order, byName = normalizeNames(order, byName, runtime.GOMAXPROCS(0))

	for _, name := range order {
		rs := byName[name]
		s := Summary{Name: name, Runs: len(rs), Metrics: map[string]float64{}}
		var nss []float64
		metricVals := map[string][]float64{}
		for _, r := range rs {
			nss = append(nss, r.nsPerOp)
			for u, v := range r.metrics {
				metricVals[u] = append(metricVals[u], v)
			}
		}
		sort.Float64s(nss)
		s.NsPerOp = median(nss)
		s.NsMin = nss[0]
		s.NsMax = nss[len(nss)-1]
		for u, vs := range metricVals {
			if u == "allocs/op" {
				m := median(vs)
				s.AllocsPct = &m
				continue
			}
			s.Metrics[u] = median(vs)
		}
		if len(s.Metrics) == 0 {
			s.Metrics = nil
		}
		snap.Benchmarks = append(snap.Benchmarks, s)
	}

	enc, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	fmt.Printf("benchjson: wrote %d benchmarks to %s\n", len(snap.Benchmarks), *out)
}
