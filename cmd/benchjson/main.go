// Command benchjson converts `go test -bench` output into a compact
// JSON snapshot. Repeated runs of the same benchmark (from -count=N)
// are collapsed to their median, so the snapshot is robust to scheduler
// noise without needing benchstat.
//
// Usage:
//
//	go test ./internal/gemm -bench . -count=5 | go run ./cmd/benchjson -out BENCH_kernels.json
//	go run ./cmd/benchjson -in bench.txt -out BENCH_kernels.json
//	go run ./cmd/benchjson -in bench.txt -compare BENCH_kernels.json -regress 1.15
//
// With -compare the freshly parsed medians are diffed against a prior
// snapshot: one row per benchmark with the new/old ns ratio, and any
// benchmark slower than the -regress threshold flags the run (non-zero
// exit), which is what `make bench-kernels-compare` gates on.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// result is one benchmark line's parsed fields.
type result struct {
	iters   int64
	nsPerOp float64
	metrics map[string]float64 // extra "value unit" pairs (GFLOPS, B/op, ...)
}

// Summary is the per-benchmark aggregate written to JSON.
type Summary struct {
	Name      string             `json:"name"`
	Runs      int                `json:"runs"`
	NsPerOp   float64            `json:"ns_per_op_median"`
	NsMin     float64            `json:"ns_per_op_min"`
	NsMax     float64            `json:"ns_per_op_max"`
	Metrics   map[string]float64 `json:"metrics,omitempty"` // medians
	AllocsPct *float64           `json:"allocs_per_op,omitempty"`
}

// Snapshot is the output document.
type Snapshot struct {
	Note       string    `json:"note"`
	GoOS       string    `json:"goos,omitempty"`
	GoArch     string    `json:"goarch,omitempty"`
	CPU        string    `json:"cpu,omitempty"`
	Benchmarks []Summary `json:"benchmarks"`
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// parseLine parses one benchmark result line, returning the raw
// benchmark name (GOMAXPROCS suffix intact — see normalizeNames).
func parseLine(line string) (string, result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", result{}, false
	}
	ns, err := strconv.ParseFloat(fields[2], 64)
	if err != nil || fields[3] != "ns/op" {
		return "", result{}, false
	}
	r := result{iters: iters, nsPerOp: ns, metrics: map[string]float64{}}
	// The tail is "value unit" pairs. A field that doesn't parse as a
	// number advances by ONE to resynchronise — advancing by two would
	// misalign every subsequent pair.
	for i := 4; i+1 < len(fields); {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			i++
			continue
		}
		// Metrics are keyed by unit; a second metric with the same unit
		// (two custom ns columns, say) must not silently clobber the
		// first, so later ones get a position-qualified key.
		key := fields[i+1]
		for k := 2; ; k++ {
			if _, taken := r.metrics[key]; !taken {
				break
			}
			key = fmt.Sprintf("%s#%d", fields[i+1], k)
		}
		r.metrics[key] = v
		i += 2
	}
	return fields[0], r, true
}

// trailingInt splits a trailing "-<int>" off the name, returning the
// base and the integer (-1 when there is none).
func trailingInt(name string) (string, int) {
	idx := strings.LastIndex(name, "-")
	if idx <= 0 {
		return name, -1
	}
	n, err := strconv.Atoi(name[idx+1:])
	if err != nil || n < 0 {
		return name, -1
	}
	return name[:idx], n
}

// normalizeNames strips the trailing -N GOMAXPROCS suffix — but only
// when it provably is one. `go test` under GOMAXPROCS=1 emits no
// suffix at all, so a name genuinely ending in -<int> (a sub-benchmark
// like BenchmarkGEMM/size-256) must not be truncated and merged with
// its siblings. The suffix is stripped when it equals this process's
// GOMAXPROCS, or when every line carries the same suffix across at
// least two distinct benchmark names (the signature of a shared
// GOMAXPROCS, possibly from another machine).
func normalizeNames(order []string, byName map[string][]result, gomaxprocs int) ([]string, map[string][]result) {
	shared, allShare := -1, len(order) > 1
	for _, name := range order {
		_, n := trailingInt(name)
		if n < 0 || (shared >= 0 && n != shared) {
			allShare = false
			break
		}
		shared = n
	}
	newOrder := make([]string, 0, len(order))
	newByName := make(map[string][]result, len(byName))
	for _, name := range order {
		base, n := trailingInt(name)
		stripped := name
		if n >= 0 && (n == gomaxprocs || allShare) {
			stripped = base
		}
		if _, seen := newByName[stripped]; !seen {
			newOrder = append(newOrder, stripped)
		}
		newByName[stripped] = append(newByName[stripped], byName[name]...)
	}
	return newOrder, newByName
}

// compareRow is one line of the -compare delta table.
type compareRow struct {
	Name   string
	OldNs  float64
	NewNs  float64
	Ratio  float64 // new/old; <1 is faster, >1 is slower
	Status string  // "faster", "ok", "REGRESSION", "new", "removed"
}

// compareSnapshots diffs new medians against an old snapshot. A
// benchmark whose new/old ns ratio exceeds threshold is a regression;
// benchmarks present on only one side are reported informationally and
// never flag the run.
func compareSnapshots(oldSnap, newSnap Snapshot, threshold float64) (rows []compareRow, regressed bool) {
	oldByName := map[string]Summary{}
	for _, s := range oldSnap.Benchmarks {
		oldByName[s.Name] = s
	}
	seen := map[string]bool{}
	for _, s := range newSnap.Benchmarks {
		seen[s.Name] = true
		o, ok := oldByName[s.Name]
		if !ok {
			rows = append(rows, compareRow{Name: s.Name, NewNs: s.NsPerOp, Status: "new"})
			continue
		}
		row := compareRow{Name: s.Name, OldNs: o.NsPerOp, NewNs: s.NsPerOp}
		if o.NsPerOp > 0 {
			row.Ratio = s.NsPerOp / o.NsPerOp
		}
		switch {
		case row.Ratio > threshold:
			row.Status = "REGRESSION"
			regressed = true
		case row.Ratio < 1:
			row.Status = "faster"
		default:
			row.Status = "ok"
		}
		rows = append(rows, row)
	}
	for _, s := range oldSnap.Benchmarks {
		if !seen[s.Name] {
			rows = append(rows, compareRow{Name: s.Name, OldNs: s.NsPerOp, Status: "removed"})
		}
	}
	return rows, regressed
}

// renderCompare prints the delta table.
func renderCompare(w io.Writer, rows []compareRow, threshold float64) {
	fmt.Fprintf(w, "%-48s %14s %14s %8s  %s\n", "benchmark", "old ns/op", "new ns/op", "ratio", "status")
	for _, r := range rows {
		oldNs, newNs, ratio := "-", "-", "-"
		if r.OldNs > 0 {
			oldNs = strconv.FormatFloat(r.OldNs, 'f', 0, 64)
		}
		if r.NewNs > 0 {
			newNs = strconv.FormatFloat(r.NewNs, 'f', 0, 64)
		}
		if r.Ratio > 0 {
			ratio = strconv.FormatFloat(r.Ratio, 'f', 3, 64)
		}
		fmt.Fprintf(w, "%-48s %14s %14s %8s  %s\n", r.Name, oldNs, newNs, ratio, r.Status)
	}
	fmt.Fprintf(w, "(ratio = new/old median ns/op; >%.2f flags a regression)\n", threshold)
}

func main() {
	in := flag.String("in", "", "bench output file (default stdin)")
	out := flag.String("out", "", "output JSON file (default stdout)")
	note := flag.String("note", "kernel microbenchmark snapshot (medians over -count runs)", "note field for the snapshot")
	compare := flag.String("compare", "", "prior snapshot JSON to diff against (delta mode)")
	regress := flag.Float64("regress", 1.15, "new/old ns ratio above which a benchmark is a regression")
	flag.Parse()

	var src io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatalf("benchjson: %v", err)
		}
		defer f.Close()
		src = f
	}

	snap := Snapshot{Note: *note}
	byName := map[string][]result{}
	var order []string
	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			snap.GoOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			snap.GoArch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			snap.CPU = strings.TrimPrefix(line, "cpu: ")
		}
		if name, r, ok := parseLine(line); ok {
			if _, seen := byName[name]; !seen {
				order = append(order, name)
			}
			byName[name] = append(byName[name], r)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	order, byName = normalizeNames(order, byName, runtime.GOMAXPROCS(0))

	for _, name := range order {
		rs := byName[name]
		s := Summary{Name: name, Runs: len(rs), Metrics: map[string]float64{}}
		var nss []float64
		metricVals := map[string][]float64{}
		for _, r := range rs {
			nss = append(nss, r.nsPerOp)
			for u, v := range r.metrics {
				metricVals[u] = append(metricVals[u], v)
			}
		}
		sort.Float64s(nss)
		s.NsPerOp = median(nss)
		s.NsMin = nss[0]
		s.NsMax = nss[len(nss)-1]
		for u, vs := range metricVals {
			if u == "allocs/op" {
				m := median(vs)
				s.AllocsPct = &m
				continue
			}
			s.Metrics[u] = median(vs)
		}
		if len(s.Metrics) == 0 {
			s.Metrics = nil
		}
		snap.Benchmarks = append(snap.Benchmarks, s)
	}

	if *compare != "" {
		raw, err := os.ReadFile(*compare)
		if err != nil {
			log.Fatalf("benchjson: %v", err)
		}
		var oldSnap Snapshot
		if err := json.Unmarshal(raw, &oldSnap); err != nil {
			log.Fatalf("benchjson: parsing %s: %v", *compare, err)
		}
		rows, regressed := compareSnapshots(oldSnap, snap, *regress)
		renderCompare(os.Stdout, rows, *regress)
		if *out != "" {
			writeSnapshot(snap, *out)
		}
		if regressed {
			log.Fatalf("benchjson: regression(s) above %.2fx vs %s", *regress, *compare)
		}
		return
	}

	enc, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	writeSnapshot(snap, *out)
}

func writeSnapshot(snap Snapshot, path string) {
	enc, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	enc = append(enc, '\n')
	if err := os.WriteFile(path, enc, 0o644); err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	fmt.Printf("benchjson: wrote %d benchmarks to %s\n", len(snap.Benchmarks), path)
}
