// Command explain is the paper's practitioner guidance as an
// interactive tool: for one convolution configuration it prints which
// engine the Auto dispatcher selects and why, then profiles every
// implementation and decomposes each one's dominant kernel — occupancy
// limiter, compute-vs-memory bound, sustained throughput, and the
// advisory notes matching the paper's Section V summaries.
//
// With -plan it instead runs the plan-time autotuner (internal/planner)
// and prints the per-layer decision table: for each Table I layer plus
// the flag-specified configuration, every candidate engine's predicted
// cost from the gpusim cost model, the chosen engine, and the margin
// over the runner-up. -probe K refines the top K candidates per layer
// with a one-shot measured probe (real numerics; slow at full shapes).
//
// Usage:
//
//	explain [-b 64] [-i 128] [-c 3] [-f 64] [-k 11] [-s 1]
//	explain -plan [-device k40c] [-probe 0] [flags as above]
package main

import (
	"flag"
	"fmt"
	"log"

	"gpucnn/internal/bench"
	"gpucnn/internal/conv"
	"gpucnn/internal/gpusim"
	"gpucnn/internal/impls"
	"gpucnn/internal/planner"
	"gpucnn/internal/workload"
)

func main() {
	b := flag.Int("b", 64, "mini-batch size")
	i := flag.Int("i", 128, "input extent")
	c := flag.Int("c", 3, "input channels")
	f := flag.Int("f", 64, "filter count")
	k := flag.Int("k", 11, "kernel extent")
	s := flag.Int("s", 1, "stride")
	plan := flag.Bool("plan", false, "print the plan-time autotuner decision table (Table I layers + this configuration)")
	probe := flag.Int("probe", 0, "with -plan: refine the top K candidates per layer with a one-shot measured probe")
	device := flag.String("device", "k40c", "device spec to plan for (k40c, titanx)")
	flag.Parse()

	cfg := conv.Config{Batch: *b, Input: *i, Channels: *c, Filters: *f, Kernel: *k, Stride: *s}
	if err := cfg.Validate(); err != nil {
		log.Fatal(err)
	}
	spec, err := bench.SpecByName(*device)
	if err != nil {
		log.Fatal(err)
	}

	if *plan {
		printPlanTable(spec, cfg, *probe)
		return
	}

	auto := impls.NewAuto(0).(interface {
		PickOn(gpusim.DeviceSpec, conv.Config) (impls.Engine, string)
	})
	pick, reason := auto.PickOn(spec, cfg)
	fmt.Printf("configuration %v (channels %d)\n", cfg, cfg.Channels)
	fmt.Printf("recommended engine: %s — %s\n\n", pick.Name(), reason)
	for _, e := range impls.All() {
		if err := e.Supports(cfg); err != nil {
			fmt.Printf("%s: shape unsupported (%v)\n\n", e.Name(), err)
			continue
		}
		dev := gpusim.New(spec)
		plan, err := e.Plan(dev, cfg)
		if err != nil {
			fmt.Printf("%s: %v\n\n", e.Name(), err)
			continue
		}
		if err := plan.Iteration(); err != nil {
			fmt.Printf("%s: %v\n\n", e.Name(), err)
			plan.Release()
			continue
		}
		top := dev.Prof.TopKernels(1)
		fmt.Printf("%s — iteration %v, dominant kernel %s (%s-bound, intensity %.1f flops/B)\n",
			e.Name(), dev.Elapsed().Round(1000), top[0].Name,
			top[0].Bound(spec), top[0].ArithmeticIntensity())
		plan.Release()
	}
}

// printPlanTable runs the autotuner over the Table I layers plus the
// flag configuration and renders the decision table, then the full
// candidate scorecard for the flag configuration.
func printPlanTable(spec gpusim.DeviceSpec, cfg conv.Config, probe int) {
	p := planner.New(planner.Options{ProbeTopK: probe, Cache: planner.NewCache()})
	layers := workload.TableI()
	layers = append(layers, workload.NamedConfig{Name: "(flags)", Cfg: cfg.WithDefaults()})

	fmt.Printf("plan-time autotuner decisions — %s, training objective", spec.Name)
	if probe > 1 {
		fmt.Printf(", measured probe over top %d", probe)
	}
	fmt.Printf("\n\n%-8s %-20s %-15s %-10s %12s %8s  %s\n",
		"layer", "config", "chosen", "strategy", "predicted", "margin", "reason")
	var last planner.Decision
	for _, nc := range layers {
		d, err := p.Decide(spec, nc.Cfg)
		if err != nil {
			fmt.Printf("%-8s %-20v %s\n", nc.Name, nc.Cfg, err)
			continue
		}
		fmt.Printf("%-8s %-20v %-15s %-10s %12v %+7.0f%%  %s\n",
			nc.Name, nc.Cfg, d.Engine, d.Strategy,
			d.Predicted.Round(1000), 100*d.Margin(), d.Reason)
		last = d
	}
	if last.Engine == "" {
		return
	}
	fmt.Printf("\ncandidates for %v:\n", last.Cfg)
	for _, c := range last.Candidates {
		if c.Skipped != "" {
			fmt.Printf("  %-16s %-10s %12s  skipped: %s\n", c.Engine, c.Strategy, "—", c.Skipped)
			continue
		}
		line := fmt.Sprintf("  %-16s %-10s %12v", c.Engine, c.Strategy, c.Predicted.Round(1000))
		if c.Measured > 0 {
			line += fmt.Sprintf("  measured %v", c.Measured.Round(1000))
		}
		fmt.Println(line)
	}
}
