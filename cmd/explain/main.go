// Command explain is the paper's practitioner guidance as an
// interactive tool: for one convolution configuration it prints which
// engine the Auto dispatcher selects and why, then profiles every
// implementation and decomposes each one's dominant kernel — occupancy
// limiter, compute-vs-memory bound, sustained throughput, and the
// advisory notes matching the paper's Section V summaries.
//
// Usage:
//
//	explain [-b 64] [-i 128] [-c 3] [-f 64] [-k 11] [-s 1]
package main

import (
	"flag"
	"fmt"
	"log"

	"gpucnn/internal/conv"
	"gpucnn/internal/gpusim"
	"gpucnn/internal/impls"
)

func main() {
	b := flag.Int("b", 64, "mini-batch size")
	i := flag.Int("i", 128, "input extent")
	c := flag.Int("c", 3, "input channels")
	f := flag.Int("f", 64, "filter count")
	k := flag.Int("k", 11, "kernel extent")
	s := flag.Int("s", 1, "stride")
	flag.Parse()

	cfg := conv.Config{Batch: *b, Input: *i, Channels: *c, Filters: *f, Kernel: *k, Stride: *s}
	if err := cfg.Validate(); err != nil {
		log.Fatal(err)
	}

	auto := impls.NewAuto(0).(interface {
		Pick(conv.Config) (impls.Engine, string)
	})
	pick, reason := auto.Pick(cfg)
	fmt.Printf("configuration %v (channels %d)\n", cfg, cfg.Channels)
	fmt.Printf("recommended engine: %s — %s\n\n", pick.Name(), reason)

	spec := gpusim.TeslaK40c()
	for _, e := range impls.All() {
		if err := e.Supports(cfg); err != nil {
			fmt.Printf("%s: shape unsupported (%v)\n\n", e.Name(), err)
			continue
		}
		dev := gpusim.New(spec)
		plan, err := e.Plan(dev, cfg)
		if err != nil {
			fmt.Printf("%s: %v\n\n", e.Name(), err)
			continue
		}
		if err := plan.Iteration(); err != nil {
			fmt.Printf("%s: %v\n\n", e.Name(), err)
			plan.Release()
			continue
		}
		top := dev.Prof.TopKernels(1)
		fmt.Printf("%s — iteration %v, dominant kernel %s (%s-bound, intensity %.1f flops/B)\n",
			e.Name(), dev.Elapsed().Round(1000), top[0].Name,
			top[0].Bound(spec), top[0].ArithmeticIntensity())
		plan.Release()
	}
}
