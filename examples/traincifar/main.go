// Traincifar: train cuda-convnet's classic CIFAR-10 architecture on a
// synthetic 3-channel dataset with the Auto engine — the paper's
// practitioner guidance picking the convolution implementation per
// layer shape — and report held-out accuracy plus the simulated
// per-layer cost.
//
// Usage:
//
//	traincifar [-steps 120] [-batch 32]
package main

import (
	"flag"
	"fmt"

	"gpucnn/internal/dataset"
	"gpucnn/internal/gpusim"
	"gpucnn/internal/impls"
	"gpucnn/internal/models"
	"gpucnn/internal/nn"
)

func main() {
	steps := flag.Int("steps", 120, "training steps")
	batch := flag.Int("batch", 32, "mini-batch size")
	flag.Parse()

	data := dataset.SyntheticColor(2048, 32, 0.1, 3)
	train, test := data.Split(1792)

	m := models.CIFARNet(impls.NewAuto(0))
	dev := gpusim.New(gpusim.TeslaK40c())
	ctx := nn.NewContext(dev, true)
	opt := nn.NewSGD(0.02, 0.9, 1e-4)

	fmt.Printf("training CIFARNet on %d synthetic colour images (%d held out), Auto engine, batch %d\n\n",
		train.Len(), test.Len(), *batch)
	for step := 1; step <= *steps; step++ {
		x, labels := train.Batch((step-1)*(*batch), *batch)
		loss, acc := m.Net.TrainStep(ctx, x, labels)
		opt.Step(m.Net.Params())
		if step%20 == 0 || step == 1 {
			fmt.Printf("step %3d  loss %.4f  batch accuracy %5.1f%%  simulated GPU time %v\n",
				step, loss, acc*100, dev.Elapsed().Round(1000))
		}
	}

	loss, acc := models.Evaluate(m, test.Images, test.Labels, *batch)
	fmt.Printf("\nheld-out: loss %.4f, accuracy %.1f%%\n", loss, acc*100)
	fmt.Printf("\nsimulated layer-time breakdown:\n%s", nn.BreakdownReport(ctx.TimeByKind))
	m.Net.Release()
}
