// Modelzoo: profile the paper's four real-life models (AlexNet,
// GoogLeNet, VGG-19, OverFeat) on the simulated K40c under any
// convolution engine, printing each model's per-layer-kind breakdown —
// an interactive version of the paper's Figure 2 that lets you see how
// the engine choice moves the convolution share.
//
// Usage:
//
//	modelzoo [-engine Caffe] [-batch 64]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"gpucnn/internal/gpusim"
	"gpucnn/internal/impls"
	"gpucnn/internal/models"
	"gpucnn/internal/nn"
	"gpucnn/internal/tensor"
)

func main() {
	engineName := flag.String("engine", "Caffe", "convolution engine for all conv layers")
	batch := flag.Int("batch", 64, "mini-batch size")
	flag.Parse()

	engine, err := impls.ByName(*engineName)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("profiling one training iteration per model (engine %s, batch %d)\n\n",
		engine.Name(), *batch)
	for _, name := range []string{"GoogLeNet", "VGG", "OverFeat", "AlexNet"} {
		m := models.All(engine)[name]
		dev := gpusim.New(gpusim.TeslaK40c())
		ctx := nn.NewContext(dev, true)
		m.Net.SimulateIteration(ctx, tensor.Shape(m.InputShape(*batch)))
		fmt.Printf("%s — %.2fM params, ~%.1f GB activations, iteration %v, conv share %.1f%%\n",
			name, float64(m.Net.ParamCount())/1e6,
			float64(ctx.ActivationBytes)/(1<<30),
			dev.Elapsed().Round(time.Millisecond), nn.ConvShare(ctx.TimeByKind)*100)
		fmt.Print(nn.BreakdownReport(ctx.TimeByKind))
		fmt.Println()
		m.Net.Release()
	}
}
