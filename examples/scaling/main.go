// Scaling: a data-parallel scaling study across simulated GPUs — the
// "one weird trick" extension (the paper's reference [18]). Shards a
// convolution layer's mini-batch over 1–8 devices, all-reduces the
// weight gradients over PCIe, and reports speedup and communication
// fraction per cluster size, for both a conv-heavy and a weight-heavy
// layer.
//
// Usage:
//
//	scaling [-engine cuDNN] [-batch 128]
package main

import (
	"flag"
	"fmt"
	"log"

	"gpucnn/internal/conv"
	"gpucnn/internal/gpusim"
	"gpucnn/internal/impls"
	"gpucnn/internal/multigpu"
	"gpucnn/internal/workload"
)

func study(name string, e impls.Engine, cfg conv.Config) {
	fmt.Printf("%s: %v (channels %d, weights %.1f MB)\n", name, cfg, cfg.Channels,
		float64(cfg.FilterBytes())/(1<<20))
	fmt.Printf("  %7s %12s %12s %12s %9s %7s\n", "GPUs", "compute", "all-reduce", "total", "speedup", "comm%")
	results, err := multigpu.ScalingStudy(e, cfg, gpusim.TeslaK40c(), []int{1, 2, 4, 8})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Printf("  %7d %12s %12s %12s %8.2fx %6.1f%%\n",
			r.Devices, r.ComputeTime.Round(1000), r.AllReduce.Round(1000),
			r.Total.Round(1000), r.Speedup, r.CommFraction*100)
	}
	fmt.Println()
}

func main() {
	engineName := flag.String("engine", "cuDNN", "convolution engine")
	batch := flag.Int("batch", 128, "global mini-batch size")
	flag.Parse()

	e, err := impls.ByName(*engineName)
	if err != nil {
		log.Fatal(err)
	}

	convHeavy := workload.Base()
	convHeavy.Batch = *batch
	study("conv-heavy layer", e, convHeavy)

	weightHeavy := conv.Config{Batch: *batch, Input: 13, Channels: 384, Filters: 384, Kernel: 3, Stride: 1}
	study("weight-heavy layer (scales worse: all-reduce is constant in N)", e, weightHeavy)
}
