// Trainlenet: train the paper's Figure 1 network (LeNet-5) end to end
// on a synthetic MNIST-geometry digit dataset. Every convolution runs
// through a real engine (numerically exact), the attached device model
// tracks what the same training would cost on a Tesla K40c, and the
// trained weights are checkpointed and restored to verify the
// round trip.
//
// Usage:
//
//	trainlenet [-steps 80] [-batch 32] [-engine cuDNN] [-checkpoint lenet.ckpt]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"

	"gpucnn/internal/dataset"
	"gpucnn/internal/gpusim"
	"gpucnn/internal/impls"
	"gpucnn/internal/models"
	"gpucnn/internal/nn"
)

func evaluate(m *models.Model, d *dataset.Dataset) (loss, acc float64) {
	ctx := nn.NewContext(nil, false)
	x, labels := d.Batch(0, d.Len())
	m.Net.Forward(ctx, nn.NewValue(x))
	return m.Net.Loss().Loss(labels)
}

func main() {
	steps := flag.Int("steps", 80, "training steps")
	batch := flag.Int("batch", 32, "mini-batch size")
	engineName := flag.String("engine", "cuDNN", "convolution engine")
	ckpt := flag.String("checkpoint", "", "optional path to write the trained checkpoint")
	flag.Parse()

	engine, err := impls.ByName(*engineName)
	if err != nil {
		log.Fatal(err)
	}

	data := dataset.Synthetic(2048, 28, 0.15, 1)
	train, test := data.Split(1792)
	fmt.Printf("training LeNet-5 on %d synthetic digits (%d held out), engine %s, batch %d\n\n",
		train.Len(), test.Len(), engine.Name(), *batch)

	m := models.LeNet5(engine)
	dev := gpusim.New(gpusim.TeslaK40c())
	ctx := nn.NewContext(dev, true)
	opt := nn.NewSGD(0.03, 0.9, 1e-4)

	for step := 1; step <= *steps; step++ {
		x, labels := train.Batch((step-1)*(*batch), *batch)
		loss, acc := m.Net.TrainStep(ctx, x, labels)
		opt.Step(m.Net.Params())
		if step%10 == 0 || step == 1 {
			fmt.Printf("step %3d  loss %.4f  batch accuracy %5.1f%%  simulated GPU time %v\n",
				step, loss, acc*100, dev.Elapsed().Round(1000))
		}
	}

	loss, acc := evaluate(m, test)
	fmt.Printf("\nheld-out: loss %.4f, accuracy %.1f%%\n", loss, acc*100)

	// Checkpoint round trip: save, restore into a fresh network, verify
	// identical held-out behaviour.
	var buf bytes.Buffer
	if err := m.Net.Save(&buf); err != nil {
		log.Fatal(err)
	}
	restored := models.LeNet5(engine)
	x, _ := test.Batch(0, 1)
	restored.Net.Forward(nn.NewContext(nil, false), nn.NewValue(x)) // materialise params
	if err := restored.Net.Load(bytes.NewReader(buf.Bytes())); err != nil {
		log.Fatal(err)
	}
	rLoss, rAcc := evaluate(restored, test)
	fmt.Printf("restored checkpoint: loss %.4f, accuracy %.1f%% (%d bytes)\n", rLoss, rAcc*100, buf.Len())

	if *ckpt != "" {
		if err := os.WriteFile(*ckpt, buf.Bytes(), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("checkpoint written to %s\n", *ckpt)
	}

	fmt.Printf("\nsimulated layer-time breakdown:\n%s", nn.BreakdownReport(ctx.TimeByKind))
	m.Net.Release()
}
