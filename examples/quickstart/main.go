// Quickstart: run one convolutional layer on the simulated Tesla K40c
// with the cuDNN engine, computing a real (CPU-executed, numerically
// correct) result while the device model reports simulated runtime,
// memory, and nvprof-style kernel metrics.
package main

import (
	"fmt"
	"log"

	"gpucnn/internal/conv"
	"gpucnn/internal/gpusim"
	"gpucnn/internal/impls"
	"gpucnn/internal/tensor"
)

func main() {
	// A small convolution: batch 16, 32×32 RGB input, 32 filters of
	// 5×5, stride 1.
	cfg := conv.Config{Batch: 16, Input: 32, Channels: 3, Filters: 32, Kernel: 5, Stride: 1}

	// Build the simulated device and pick an engine.
	dev := gpusim.New(gpusim.TeslaK40c())
	engine := impls.NewCuDNN()
	if err := engine.Supports(cfg); err != nil {
		log.Fatalf("engine cannot run this shape: %v", err)
	}
	plan, err := engine.Plan(dev, cfg)
	if err != nil {
		log.Fatalf("planning failed: %v", err)
	}
	defer plan.Release()

	// Real tensors: the engines actually compute the convolution.
	r := tensor.NewRNG(1)
	x := tensor.New(cfg.InputShape()...)
	x.FillUniform(r, -1, 1)
	w := tensor.New(cfg.FilterShape()...)
	w.FillUniform(r, -0.1, 0.1)
	y := tensor.New(cfg.OutputShape()...)

	if err := plan.Forward(x, w, y); err != nil {
		log.Fatalf("forward failed: %v", err)
	}

	fmt.Printf("config           %v (channels %d)\n", cfg, cfg.Channels)
	fmt.Printf("output shape     %v, checksum %.4f\n", y.Shape(), y.Sum())
	fmt.Printf("simulated time   %v on %s\n", dev.Elapsed(), dev.Spec.Name)
	fmt.Printf("device memory    %d MB peak\n", dev.Mem.Peak()>>20)
	fmt.Printf("\nnvprof-style kernel profile:\n%s", dev.Prof.Summary())
}
