// Autotune: the paper's practitioner guidance as a tool. Given a
// convolution configuration (the 5-tuple plus channels) and an optional
// device-memory budget, measure all seven implementations on the
// simulated K40c and recommend the best one — fastest, fastest within
// budget, and most memory-frugal — the trade-off the paper's Section IV
// and V summaries describe.
//
// Usage:
//
//	autotune [-b 64] [-i 128] [-c 3] [-f 64] [-k 11] [-s 1] [-mem-mb 12288]
package main

import (
	"flag"
	"fmt"
	"sort"

	"gpucnn/internal/bench"
	"gpucnn/internal/conv"
	"gpucnn/internal/impls"
)

func main() {
	b := flag.Int("b", 64, "mini-batch size")
	i := flag.Int("i", 128, "input spatial extent (square)")
	c := flag.Int("c", 3, "input channels")
	f := flag.Int("f", 64, "filter count")
	k := flag.Int("k", 11, "kernel extent (square)")
	s := flag.Int("s", 1, "stride")
	memMB := flag.Int64("mem-mb", 12288, "device memory budget in MB")
	flag.Parse()

	cfg := conv.Config{Batch: *b, Input: *i, Channels: *c, Filters: *f, Kernel: *k, Stride: *s}
	if err := cfg.Validate(); err != nil {
		fmt.Println("invalid configuration:", err)
		return
	}

	fmt.Printf("measuring %v (channels %d) across all implementations...\n\n", cfg, cfg.Channels)
	var cells []bench.Cell
	for _, e := range impls.All() {
		cells = append(cells, bench.Measure(e, cfg))
	}

	fmt.Printf("%-15s %12s %10s %10s\n", "Implementation", "Time (ms)", "Mem (MB)", "Status")
	for _, cell := range cells {
		switch {
		case cell.OOM:
			fmt.Printf("%-15s %12s %10s %10s\n", cell.Impl, "-", "-", "OOM")
		case cell.Unsupported != "":
			fmt.Printf("%-15s %12s %10s %10s\n", cell.Impl, "-", "-", "shape n/s")
		default:
			fmt.Printf("%-15s %12.2f %10d %10s\n", cell.Impl,
				float64(cell.Time.Microseconds())/1000, cell.PeakBytes>>20, "ok")
		}
	}

	ok := cells[:0:0]
	for _, cell := range cells {
		if cell.Ok() {
			ok = append(ok, cell)
		}
	}
	if len(ok) == 0 {
		fmt.Println("\nno implementation can run this configuration")
		return
	}
	sort.Slice(ok, func(a, b int) bool { return ok[a].Time < ok[b].Time })
	fmt.Printf("\nfastest overall:        %s (%.2f ms)\n", ok[0].Impl, ms(ok[0]))

	budget := *memMB << 20
	for _, cell := range ok {
		if cell.PeakBytes <= budget {
			fmt.Printf("fastest within %5d MB: %s (%.2f ms, %d MB)\n",
				*memMB, cell.Impl, ms(cell), cell.PeakBytes>>20)
			break
		}
	}
	frugal := ok[0]
	for _, cell := range ok {
		if cell.PeakBytes < frugal.PeakBytes {
			frugal = cell
		}
	}
	fmt.Printf("most memory-frugal:     %s (%d MB, %.2f ms)\n", frugal.Impl, frugal.PeakBytes>>20, ms(frugal))
}

func ms(c bench.Cell) float64 { return float64(c.Time.Microseconds()) / 1000 }
