// Package gpucnn is a library-level reproduction of "Performance
// Analysis of GPU-based Convolutional Neural Networks" (Li, Zhang,
// Huang, Wang, Zheng — ICPP 2016). It provides:
//
//   - The seven convolution implementations the paper compares (Caffe,
//     cuDNN v3, Torch-cunn, Theano-CorrMM, Theano-fft, cuda-convnet2,
//     fbfft), each computing numerically correct results on the CPU
//     (goroutine-parallel) while a performance model of the paper's
//     Tesla K40c simulates runtime, device memory and nvprof metrics.
//   - The three underlying convolution strategies (direct,
//     unrolling/im2col+GEMM, FFT) with forward and backward passes.
//   - A small CNN framework and the four profiled models (AlexNet,
//     VGG-19, GoogLeNet, OverFeat) plus LeNet-5.
//   - Benchmark drivers regenerating every figure and table of the
//     paper's evaluation.
//
// This file is the public facade: it re-exports the stable surface of
// the internal packages, so downstream users import only
// "gpucnn". See the examples/ directory for runnable entry points and
// DESIGN.md for the system inventory.
package gpucnn

import (
	"gpucnn/internal/bench"
	"gpucnn/internal/conv"
	"gpucnn/internal/gpusim"
	"gpucnn/internal/impls"
	"gpucnn/internal/models"
	"gpucnn/internal/nn"
	"gpucnn/internal/tensor"
	"gpucnn/internal/workload"
)

// Config is the paper's convolution-layer 5-tuple (b, i, f, k, s) plus
// input channels and padding.
type Config = conv.Config

// Strategy labels the three convolution families.
type Strategy = conv.Strategy

// The three convolution strategies.
const (
	Direct    = conv.Direct
	Unrolling = conv.Unrolling
	FFT       = conv.FFT
)

// Engine is one of the seven convolution implementations.
type Engine = impls.Engine

// Plan is an engine instantiated on a device for one configuration.
type Plan = impls.Plan

// Engine constructors, one per implementation in the paper.
var (
	NewCaffe        = impls.NewCaffe
	NewCuDNN        = impls.NewCuDNN
	NewTorchCunn    = impls.NewTorchCunn
	NewTheanoCorrMM = impls.NewTheanoCorrMM
	NewTheanoFFT    = impls.NewTheanoFFT
	NewCudaConvnet2 = impls.NewCudaConvnet2
	NewFbfft        = impls.NewFbfft
	Engines         = impls.All
	EngineByName    = impls.ByName
	EngineNames     = impls.Names

	// Extensions beyond the paper's seven implementations: the
	// F(2×2,3×3) Winograd engine and the rule-based Auto dispatcher.
	NewWinograd      = impls.NewWinograd
	NewAuto          = impls.NewAuto
	EngineExtensions = impls.Extensions
)

// Device is the simulated GPU.
type Device = gpusim.Device

// DeviceSpec describes a GPU's architectural parameters.
type DeviceSpec = gpusim.DeviceSpec

// KernelSpec characterises one simulated kernel launch.
type KernelSpec = gpusim.KernelSpec

// Metrics are the nvprof-style metrics of a launch or profile.
type Metrics = gpusim.Metrics

// OOMError is returned when an allocation exceeds device memory.
type OOMError = gpusim.OOMError

// NewDevice builds a simulated device from a spec.
func NewDevice(spec DeviceSpec) *Device { return gpusim.New(spec) }

// TeslaK40c returns the spec of the paper's GPU.
func TeslaK40c() DeviceSpec { return gpusim.TeslaK40c() }

// Tensor is a dense float32 tensor in NCHW layout.
type Tensor = tensor.Tensor

// Shape is a tensor shape.
type Shape = tensor.Shape

// NewTensor allocates a zero tensor.
func NewTensor(dims ...int) *Tensor { return tensor.New(dims...) }

// RNG is the deterministic generator used for synthetic data.
type RNG = tensor.RNG

// NewRNG seeds a generator.
func NewRNG(seed uint64) *RNG { return tensor.NewRNG(seed) }

// Cell is one (implementation, configuration) measurement.
type Cell = bench.Cell

// Measure runs one engine on one configuration on a fresh simulated
// K40c, averaging over bench.Iterations training iterations.
func Measure(e Engine, cfg Config) Cell { return bench.Measure(e, cfg) }

// BaseConfig returns the paper's base configuration (64,128,64,11,1).
func BaseConfig() Config { return workload.Base() }

// TableI returns the paper's five benchmarking configurations.
func TableI() []workload.NamedConfig { return workload.TableI() }

// Network framework re-exports.
type (
	// Net is a sequential network.
	Net = nn.Net
	// Layer is one network stage.
	Layer = nn.Layer
	// Context carries per-run state for network execution.
	Context = nn.Context
	// SGD is the stochastic-gradient-descent optimiser.
	SGD = nn.SGD
	// Model couples a network with its canonical input geometry.
	Model = models.Model
)

// Model builders for the paper's profiled networks.
var (
	AlexNet   = models.AlexNet
	VGG19     = models.VGG19
	GoogLeNet = models.GoogLeNet
	OverFeat  = models.OverFeat
	LeNet5    = models.LeNet5
)

// NewContext builds a network execution context; dev may be nil for
// pure-arithmetic runs.
func NewContext(dev *Device, train bool) *Context { return nn.NewContext(dev, train) }

// NewSGD builds a stochastic-gradient-descent optimiser with momentum
// and weight decay.
func NewSGD(lr, momentum, decay float32) *SGD { return nn.NewSGD(lr, momentum, decay) }
